//! Fig. 8: fraction of top RPC services by invocations, bytes, and CPU.
//!
//! Paper anchors: the top-8 services are 60% of invocations; Network Disk
//! leads both invocations and bytes but uses under 2% of fleet cycles; ML
//! Inference is 0.89% of cycles from only 0.17% of calls.

use crate::check::ExpectationSet;
use crate::render::{fmt_pct, TextTable};
use rpclens_fleet::driver::FleetRun;
use rpclens_trace::span::{MethodId, ServiceId};

/// Share of one service along the three dimensions.
#[derive(Debug, Clone)]
pub struct ServiceShare {
    /// The service.
    pub service: ServiceId,
    /// Service name.
    pub name: String,
    /// Fraction of all RPC invocations.
    pub call_share: f64,
    /// Fraction of all bytes moved.
    pub byte_share: f64,
    /// Fraction of all CPU cycles.
    pub cycle_share: f64,
}

/// The computed figure.
#[derive(Debug)]
pub struct Fig08 {
    /// Per-service shares, sorted by call share descending.
    pub shares: Vec<ServiceShare>,
}

/// Computes the figure from the popularity counters and the profiler.
pub fn compute(run: &FleetRun) -> Fig08 {
    let n_services = run.catalog.num_services();
    let mut calls = vec![0u64; n_services];
    let mut bytes = vec![0u64; n_services];
    for (m, (&c, &b)) in run
        .method_calls
        .iter()
        .zip(run.method_bytes.iter())
        .enumerate()
    {
        let svc = run.catalog.method(MethodId(m as u32)).service;
        calls[svc.0 as usize] += c;
        bytes[svc.0 as usize] += b;
    }
    let total_calls: u64 = calls.iter().sum();
    let total_bytes: u64 = bytes.iter().sum();
    let total_cycles = run.profiler.total_cycles().max(1);
    let mut shares: Vec<ServiceShare> = (0..n_services)
        .map(|i| {
            let id = ServiceId(i as u16);
            ServiceShare {
                service: id,
                name: run.catalog.service(id).name.clone(),
                call_share: calls[i] as f64 / total_calls.max(1) as f64,
                byte_share: bytes[i] as f64 / total_bytes.max(1) as f64,
                cycle_share: run.profiler.service_cycles(id.0) as f64 / total_cycles as f64,
            }
        })
        .collect();
    shares.sort_by(|a, b| b.call_share.partial_cmp(&a.call_share).expect("finite"));
    Fig08 { shares }
}

/// Renders the top services.
pub fn render(fig: &Fig08) -> String {
    let mut t = TextTable::new(&["service", "calls", "bytes", "cycles"]);
    for s in fig.shares.iter().take(12) {
        t.row(vec![
            s.name.clone(),
            fmt_pct(s.call_share),
            fmt_pct(s.byte_share),
            fmt_pct(s.cycle_share),
        ]);
    }
    format!(
        "Fig. 8 — Top services by calls / bytes / cycles\n{}",
        t.render()
    )
}

/// Paper-vs-measured checks.
pub fn checks(fig: &Fig08) -> ExpectationSet {
    let mut s = ExpectationSet::new();
    let top8: f64 = fig.shares.iter().take(8).map(|x| x.call_share).sum();
    s.add(
        "fig8.top8_calls",
        "the top-8 services account for 60% of invocations",
        top8,
        0.45,
        0.98,
    );
    let disk = fig
        .shares
        .iter()
        .find(|x| x.name == "NetworkDisk")
        .expect("disk exists");
    s.add(
        "fig8.disk_leads_calls",
        "Network Disk receives the most RPCs (~35%)",
        disk.call_share,
        0.2,
        0.68,
    );
    s.add(
        "fig8.disk_leads_bytes",
        "Network Disk transfers the most bytes",
        (fig.shares.iter().all(|x| x.byte_share <= disk.byte_share)) as u8 as f64,
        1.0,
        1.0,
    );
    s.add(
        "fig8.disk_cycles_tiny",
        "Network Disk uses under 2% of fleet cycles (we accept < 12% at sim scale)",
        disk.cycle_share,
        0.0,
        0.12,
    );
    // Compute services: outsized cycles per call.
    let ml = fig
        .shares
        .iter()
        .find(|x| x.name == "MLInference")
        .expect("ml exists");
    s.add(
        "fig8.ml_cycles_per_call",
        "ML Inference: 0.89% of cycles from 0.17% of calls (>1x ratio)",
        ml.cycle_share / ml.call_share.max(1e-9),
        1.5,
        f64::INFINITY,
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testrun::shared;

    #[test]
    fn checks_pass_on_test_run() {
        let fig = compute(shared());
        let c = checks(&fig);
        assert!(c.all_passed(), "{c}");
    }

    #[test]
    fn shares_sum_to_one() {
        let fig = compute(shared());
        let calls: f64 = fig.shares.iter().map(|s| s.call_share).sum();
        let bytes: f64 = fig.shares.iter().map(|s| s.byte_share).sum();
        let cycles: f64 = fig.shares.iter().map(|s| s.cycle_share).sum();
        assert!((calls - 1.0).abs() < 1e-9);
        assert!((bytes - 1.0).abs() < 1e-9);
        assert!((cycles - 1.0).abs() < 1e-6);
    }

    #[test]
    fn sorted_by_call_share() {
        let fig = compute(shared());
        assert!(fig
            .shares
            .windows(2)
            .all(|w| w[0].call_share >= w[1].call_share));
        assert_eq!(fig.shares[0].name, "NetworkDisk");
    }
}
