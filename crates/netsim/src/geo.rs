//! Geographic coordinates and speed-of-light propagation.
//!
//! Cross-cluster RPC latency in the paper is dominated by unavoidable wire
//! latency (§3.3.5: "wire latency, not congestion, contributes to the
//! majority of the network latency of the average RPC"), so the model
//! computes propagation from real geometry: great-circle distance, the
//! speed of light in fiber, and a route-inflation factor for non-geodesic
//! fiber paths.

use rpclens_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Speed of light in fiber, km per second (~2/3 of c in vacuum).
pub const FIBER_KM_PER_SEC: f64 = 200_000.0;

/// Multiplier accounting for fiber routes not following great circles.
pub const ROUTE_INFLATION: f64 = 1.5;

/// Mean Earth radius in kilometres.
const EARTH_RADIUS_KM: f64 = 6371.0;

/// A point on the globe, in degrees.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Latitude in degrees, positive north.
    pub lat: f64,
    /// Longitude in degrees, positive east.
    pub lon: f64,
}

impl GeoPoint {
    /// Creates a point, normalising longitude into `[-180, 180)`.
    ///
    /// # Panics
    ///
    /// Panics if latitude is outside `[-90, 90]` or either coordinate is
    /// non-finite.
    pub fn new(lat: f64, lon: f64) -> Self {
        assert!(
            lat.is_finite() && lon.is_finite(),
            "coordinates must be finite"
        );
        assert!(
            (-90.0..=90.0).contains(&lat),
            "latitude out of range: {lat}"
        );
        let lon = ((lon + 180.0).rem_euclid(360.0)) - 180.0;
        GeoPoint { lat, lon }
    }

    /// Great-circle distance to another point, in kilometres (haversine).
    pub fn distance_km(&self, other: &GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().min(1.0).asin()
    }

    /// One-way speed-of-light propagation delay to another point over
    /// realistic fiber routing.
    pub fn propagation_delay(&self, other: &GeoPoint) -> SimDuration {
        let km = self.distance_km(other) * ROUTE_INFLATION;
        SimDuration::from_secs_f64(km / FIBER_KM_PER_SEC)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ny() -> GeoPoint {
        GeoPoint::new(40.7, -74.0)
    }

    fn london() -> GeoPoint {
        GeoPoint::new(51.5, -0.1)
    }

    fn sydney() -> GeoPoint {
        GeoPoint::new(-33.9, 151.2)
    }

    #[test]
    fn distance_to_self_is_zero() {
        assert!(ny().distance_km(&ny()) < 1e-9);
    }

    #[test]
    fn known_city_distances() {
        // NY-London is ~5,570 km; NY-Sydney ~15,990 km.
        let d1 = ny().distance_km(&london());
        assert!((5400.0..5750.0).contains(&d1), "NY-London {d1}");
        let d2 = ny().distance_km(&sydney());
        assert!((15700.0..16300.0).contains(&d2), "NY-Sydney {d2}");
    }

    #[test]
    fn transatlantic_rtt_matches_reality() {
        // One-way NY-London over fiber with route inflation: ~42 ms, so RTT
        // ~84 ms, bracketing real transatlantic RTTs of 70-90 ms.
        let one_way = ny().propagation_delay(&london());
        let ms = one_way.as_millis_f64();
        assert!((35.0..50.0).contains(&ms), "one-way {ms} ms");
    }

    #[test]
    fn antipodal_rtt_is_near_200ms() {
        // The paper's longest WAN RTT is about 200 ms; a near-antipodal
        // path in our model should land in that regime.
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(0.0, 179.0);
        let rtt_ms = 2.0 * a.propagation_delay(&b).as_millis_f64();
        assert!((250.0..350.0).contains(&rtt_ms), "antipodal rtt {rtt_ms}");
    }

    #[test]
    fn longitude_normalises() {
        let p = GeoPoint::new(0.0, 190.0);
        assert!((p.lon + 170.0).abs() < 1e-9);
        let q = GeoPoint::new(0.0, -190.0);
        assert!((q.lon - 170.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "latitude")]
    fn latitude_out_of_range_panics() {
        GeoPoint::new(91.0, 0.0);
    }

    proptest! {
        #[test]
        fn distance_is_symmetric_and_nonnegative(
            lat1 in -90.0f64..90.0, lon1 in -180.0f64..180.0,
            lat2 in -90.0f64..90.0, lon2 in -180.0f64..180.0,
        ) {
            let a = GeoPoint::new(lat1, lon1);
            let b = GeoPoint::new(lat2, lon2);
            let d1 = a.distance_km(&b);
            let d2 = b.distance_km(&a);
            prop_assert!(d1 >= 0.0);
            prop_assert!((d1 - d2).abs() < 1e-6);
            // No two points on Earth are further than half the circumference.
            prop_assert!(d1 <= 20_100.0);
        }

        #[test]
        fn triangle_inequality_holds(
            lat1 in -80.0f64..80.0, lon1 in -180.0f64..180.0,
            lat2 in -80.0f64..80.0, lon2 in -180.0f64..180.0,
            lat3 in -80.0f64..80.0, lon3 in -180.0f64..180.0,
        ) {
            let a = GeoPoint::new(lat1, lon1);
            let b = GeoPoint::new(lat2, lon2);
            let c = GeoPoint::new(lat3, lon3);
            prop_assert!(a.distance_km(&c) <= a.distance_km(&b) + b.distance_km(&c) + 1e-6);
        }
    }
}
