//! Query layer: selection, counter rates, and grouped aggregation.

use crate::metric::{Labels, MetricValue};
use crate::store::{Series, TimeSeriesDb};
use rpclens_simcore::time::SimTime;
use std::collections::BTreeMap;

/// A label predicate for selecting series.
#[derive(Debug, Clone, Default)]
pub struct LabelFilter {
    required: Vec<(String, String)>,
}

impl LabelFilter {
    /// Matches every series.
    pub fn any() -> Self {
        Self::default()
    }

    /// Adds an exact-match requirement.
    pub fn eq(mut self, key: &str, value: &str) -> Self {
        self.required.push((key.to_string(), value.to_string()));
        self
    }

    /// Whether a label set satisfies the filter.
    pub fn matches(&self, labels: &Labels) -> bool {
        self.required
            .iter()
            .all(|(k, v)| labels.get(k) == Some(v.as_str()))
    }
}

/// Query operations over a [`TimeSeriesDb`].
#[derive(Debug)]
pub struct QueryEngine<'a> {
    db: &'a TimeSeriesDb,
}

impl<'a> QueryEngine<'a> {
    /// Creates a query engine over a database.
    pub fn new(db: &'a TimeSeriesDb) -> Self {
        QueryEngine { db }
    }

    /// Selects all series of `metric` matching `filter`.
    pub fn select(&self, metric: &str, filter: &LabelFilter) -> Vec<(&'a Labels, &'a Series)> {
        let mut out: Vec<_> = self
            .db
            .series_of(metric)
            .filter(|(l, _)| filter.matches(l))
            .collect();
        out.sort_by(|a, b| a.0.cmp(b.0));
        out
    }

    /// Converts a cumulative counter series to per-second rates between
    /// consecutive points. Counter resets (decreases) yield a zero rate.
    pub fn rate(series: &Series) -> Vec<(SimTime, f64)> {
        let mut out = Vec::new();
        let mut prev: Option<(SimTime, u64)> = None;
        for (t, v) in series.points() {
            if let MetricValue::Counter(c) = v {
                if let Some((pt, pc)) = prev {
                    let dt = t.since(pt).as_secs_f64();
                    if dt > 0.0 {
                        let delta = c.saturating_sub(pc);
                        out.push((*t, delta as f64 / dt));
                    }
                }
                prev = Some((*t, *c));
            }
        }
        out
    }

    /// Extracts gauge values as `(time, value)` pairs.
    pub fn gauges(series: &Series) -> Vec<(SimTime, f64)> {
        series
            .points()
            .iter()
            .filter_map(|(t, v)| v.as_gauge().map(|g| (*t, g)))
            .collect()
    }

    /// Groups selected series by one label key and sums gauge values per
    /// timestamp within each group.
    pub fn group_sum(
        &self,
        metric: &str,
        filter: &LabelFilter,
        group_key: &str,
    ) -> BTreeMap<String, BTreeMap<SimTime, f64>> {
        let mut out: BTreeMap<String, BTreeMap<SimTime, f64>> = BTreeMap::new();
        for (labels, series) in self.select(metric, filter) {
            let group = labels.get(group_key).unwrap_or("<none>").to_string();
            let entry = out.entry(group).or_default();
            for (t, v) in series.points() {
                let x = match v {
                    MetricValue::Gauge(g) => *g,
                    MetricValue::Counter(c) => *c as f64,
                    MetricValue::Distribution(h) => h.mean().unwrap_or(0.0),
                };
                *entry.entry(*t).or_insert(0.0) += x;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::MetricDescriptor;
    use rpclens_simcore::time::SimDuration;

    fn mins(m: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_mins(m)
    }

    fn db_with_counters() -> TimeSeriesDb {
        let mut d = TimeSeriesDb::new(SimDuration::from_mins(30));
        d.register(MetricDescriptor::counter(
            "rps",
            SimDuration::from_hours(100),
        ))
        .unwrap();
        d.register(MetricDescriptor::gauge(
            "util",
            SimDuration::from_hours(100),
        ))
        .unwrap();
        for cluster in ["a", "b"] {
            let labels = Labels::from_pairs([("cluster", cluster), ("service", "disk")]);
            for i in 0..4u64 {
                d.write(
                    "rps",
                    labels.clone(),
                    mins(i * 30),
                    MetricValue::Counter(i * 1800 * if cluster == "a" { 1 } else { 2 }),
                )
                .unwrap();
                d.write(
                    "util",
                    labels.clone(),
                    mins(i * 30),
                    MetricValue::Gauge(0.1 * i as f64),
                )
                .unwrap();
            }
        }
        d
    }

    #[test]
    fn select_filters_by_label() {
        let d = db_with_counters();
        let q = QueryEngine::new(&d);
        assert_eq!(q.select("rps", &LabelFilter::any()).len(), 2);
        assert_eq!(
            q.select("rps", &LabelFilter::any().eq("cluster", "a"))
                .len(),
            1
        );
        assert_eq!(
            q.select("rps", &LabelFilter::any().eq("cluster", "zzz"))
                .len(),
            0
        );
        assert_eq!(
            q.select(
                "rps",
                &LabelFilter::any().eq("cluster", "a").eq("service", "disk")
            )
            .len(),
            1
        );
    }

    #[test]
    fn rate_computes_per_second_deltas() {
        let d = db_with_counters();
        let q = QueryEngine::new(&d);
        let labels = Labels::from_pairs([("cluster", "a"), ("service", "disk")]);
        let series = q.select("rps", &LabelFilter::any().eq("cluster", "a"));
        assert_eq!(series.len(), 1);
        let rates = QueryEngine::rate(series[0].1);
        // Counter grows 1800 per 30 minutes = 1/sec.
        assert_eq!(rates.len(), 3);
        for (_, r) in &rates {
            assert!((r - 1.0).abs() < 1e-9, "rate {r}");
        }
        let _ = labels;
    }

    #[test]
    fn rate_handles_counter_reset() {
        let mut d = TimeSeriesDb::new(SimDuration::from_mins(30));
        d.register(MetricDescriptor::counter("c", SimDuration::from_hours(10)))
            .unwrap();
        d.write("c", Labels::empty(), mins(0), MetricValue::Counter(100))
            .unwrap();
        d.write("c", Labels::empty(), mins(30), MetricValue::Counter(10))
            .unwrap();
        let s = d.series("c", &Labels::empty()).unwrap();
        let rates = QueryEngine::rate(s);
        assert_eq!(rates.len(), 1);
        assert_eq!(rates[0].1, 0.0);
    }

    #[test]
    fn group_sum_aggregates_across_series() {
        let d = db_with_counters();
        let q = QueryEngine::new(&d);
        let grouped = q.group_sum("util", &LabelFilter::any(), "service");
        assert_eq!(grouped.len(), 1);
        let disk = &grouped["disk"];
        // Both clusters contribute 0.1*i at each timestamp.
        assert!((disk[&mins(30)] - 0.2).abs() < 1e-12);
        assert!((disk[&mins(90)] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn group_sum_with_missing_key_buckets_to_none() {
        let d = db_with_counters();
        let q = QueryEngine::new(&d);
        let grouped = q.group_sum("util", &LabelFilter::any(), "nonexistent");
        assert_eq!(grouped.len(), 1);
        assert!(grouped.contains_key("<none>"));
    }

    #[test]
    fn rate_of_empty_and_single_point_series_is_empty() {
        let mut d = TimeSeriesDb::new(SimDuration::from_mins(30));
        d.register(MetricDescriptor::counter("c", SimDuration::from_hours(10)))
            .unwrap();
        // Registered but never written: no series exists yet.
        let q = QueryEngine::new(&d);
        assert!(q.select("c", &LabelFilter::any()).is_empty());
        // One point: a rate needs two points to form a window, so the
        // result must be empty rather than a spurious zero or NaN.
        d.write("c", Labels::empty(), mins(0), MetricValue::Counter(42))
            .unwrap();
        let s = d.series("c", &Labels::empty()).unwrap();
        assert!(QueryEngine::rate(s).is_empty());
        assert!(QueryEngine::gauges(s).is_empty());
    }

    #[test]
    fn rate_skips_zero_width_window() {
        // Two writes into the same sampling window align to the same
        // timestamp; the dt == 0 pair must not divide by zero.
        let mut d = TimeSeriesDb::new(SimDuration::from_mins(30));
        d.register(MetricDescriptor::counter("c", SimDuration::from_hours(10)))
            .unwrap();
        d.write("c", Labels::empty(), mins(0), MetricValue::Counter(10))
            .unwrap();
        d.write("c", Labels::empty(), mins(10), MetricValue::Counter(25))
            .unwrap();
        d.write("c", Labels::empty(), mins(30), MetricValue::Counter(40))
            .unwrap();
        let s = d.series("c", &Labels::empty()).unwrap();
        let rates = QueryEngine::rate(s);
        assert_eq!(rates.len(), 1, "only the cross-window pair rates");
        assert!(rates[0].1.is_finite());
        assert!((rates[0].1 - 15.0 / 1800.0).abs() < 1e-12, "{}", rates[0].1);
    }

    #[test]
    fn rate_over_retention_truncated_series_uses_surviving_points() {
        // Retention of one hour with writes spanning three: the oldest
        // points are dropped, and rates are computed over what survives —
        // no phantom delta from the evicted prefix.
        let mut d = TimeSeriesDb::new(SimDuration::from_mins(30));
        d.register(MetricDescriptor::counter("c", SimDuration::from_hours(1)))
            .unwrap();
        for i in 0..7u64 {
            d.write(
                "c",
                Labels::empty(),
                mins(i * 30),
                MetricValue::Counter(i * i * 1000),
            )
            .unwrap();
        }
        let s = d.series("c", &Labels::empty()).unwrap();
        let points = s.points();
        assert!(
            points.len() < 7,
            "retention should have evicted old points, kept {}",
            points.len()
        );
        assert_eq!(points.last().unwrap().0, mins(180));
        let rates = QueryEngine::rate(s);
        assert_eq!(rates.len(), points.len() - 1);
        // Each surviving rate is the adjacent-pair delta, not a delta
        // against any evicted point.
        for (j, ((t, r), pair)) in rates.iter().zip(points.windows(2)).enumerate() {
            let expect = match (&pair[0].1, &pair[1].1) {
                (MetricValue::Counter(a), MetricValue::Counter(b)) => {
                    (b - a) as f64 / pair[1].0.since(pair[0].0).as_secs_f64()
                }
                other => panic!("unexpected values {other:?}"),
            };
            assert_eq!(*t, pair[1].0, "rate {j}");
            assert!((r - expect).abs() < 1e-9, "rate {j}: {r} vs {expect}");
        }
    }

    #[test]
    fn gauges_extract_values() {
        let d = db_with_counters();
        let q = QueryEngine::new(&d);
        let series = q.select("util", &LabelFilter::any().eq("cluster", "b"));
        let gs = QueryEngine::gauges(series[0].1);
        assert_eq!(gs.len(), 4);
        assert_eq!(gs[2].1, 0.2);
    }
}
