//! The service/method catalog.
//!
//! The fleet runs ~30 named-or-filler services arranged in tiers:
//! frontends (tier 0) call application backends (tier 1), which call data
//! services (tier 2), which call the storage layer (tier 3). Each method
//! carries calibrated distributions for compute time, request/response
//! sizes, and fan-out, plus the call edges that generate nested RPC trees.
//!
//! Calibration anchors (paper §2):
//! - per-method completion-time medians span ~100 µs to ~1 s, with most
//!   filler methods ≥ 10 ms and the popular storage methods sub-ms;
//! - every method has a *fast path* (cache hit / validation short-circuit)
//!   so P1 latencies sit orders of magnitude below medians (Fig. 2);
//! - request sizes centre near ~1.5 KB and responses near ~300 B with
//!   heavy within-method tails (Figs. 6-7);
//! - fan-out is bursty (Pareto), making trees wider than deep (Figs. 4-5).

use rpclens_netsim::topology::{ClusterId, Topology};
use rpclens_rpcstack::cost::MessageClass;
use rpclens_rpcstack::hedging::HedgePolicy;
use rpclens_simcore::dist::{LogNormal, Sample};
use rpclens_simcore::rng::Prng;
use rpclens_simcore::time::SimDuration;
use rpclens_trace::span::{MethodId, ServiceId};
use serde::{Deserialize, Serialize};

/// The workload category of a service (drives Table 1's grouping and the
/// dominant latency component of Fig. 14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServiceCategory {
    /// Persistent/data services (Bigtable, Network Disk, Spanner, ...).
    Storage,
    /// Compute-bound services (F1, ML Inference, BigQuery).
    ComputeIntensive,
    /// In-memory caches on reserved cores (KV-Store).
    LatencySensitive,
    /// User-facing entry points and aggregators.
    Frontend,
    /// Everything else (batch, infra, control).
    Infra,
}

/// Static description of one service.
#[derive(Debug, Clone)]
pub struct ServiceSpec {
    /// Dense service id.
    pub id: ServiceId,
    /// Service name (the named Table 1 services use their paper names).
    pub name: String,
    /// Workload category.
    pub category: ServiceCategory,
    /// Call-graph tier (0 = frontend, higher = deeper).
    pub tier: u8,
    /// Clusters this service is deployed in.
    pub clusters: Vec<ClusterId>,
    /// Whether the service holds reserved cores (KV-Store).
    pub reserved_cores: bool,
    /// Whether payloads are compressed.
    pub compressed: bool,
    /// Whether payloads are encrypted (fleet default: yes).
    pub encrypted: bool,
    /// Workers per server pool.
    pub workers: u32,
    /// Probability a call must leave the client's cluster even when the
    /// service is deployed locally (data-locality miss; drives Fig. 19).
    pub remote_call_prob: f64,
    /// Intra-cluster per-machine load skew (0 = uniform; Spanner/F1/ML
    /// are data-dependent and skewed, Fig. 22).
    pub machine_skew: f64,
    /// Mean service time of the pool's background traffic (queue model).
    pub background_service: SimDuration,
    /// Squared coefficient of variation of background service times.
    pub background_scv: f64,
    /// Multiplier on the per-site base utilization (queueing-heavy
    /// services like SSD cache and Video Metadata run hot, Fig. 14).
    pub util_bias: f64,
    /// Whether payloads are opaque blobs (cheap serialization, no RPC-level
    /// compression benefit; storage blocks arrive pre-compressed).
    pub blob_payload: bool,
    /// Probability that a call must chase data to an arbitrary deployed
    /// cluster, however far (single-homed data). Poor-locality services
    /// are what give the slowest methods their WAN-scale network tails
    /// (Fig. 12) and Fig. 19 its intercontinental clients.
    pub data_miss_prob: f64,
}

/// How many downstream calls an edge issues when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FanoutDist {
    /// Always exactly `n` parallel calls.
    Fixed(u32),
    /// Bounded-Pareto parallel fan-out on `[1, max]` with tail index
    /// `alpha` (partition/aggregate bursts).
    Pareto {
        /// Largest fan-out.
        max: u32,
        /// Tail index; smaller is burstier.
        alpha: f64,
    },
}

impl FanoutDist {
    /// Samples a fan-out count (≥ 1).
    pub fn sample(&self, rng: &mut Prng) -> u32 {
        match *self {
            FanoutDist::Fixed(n) => n.max(1),
            FanoutDist::Pareto { max, alpha } => {
                let max = max.max(1) as f64;
                let u = rng.next_f64_open();
                // Inverse-CDF of a bounded Pareto on [1, max].
                let ha = max.powf(alpha);
                let x = (1.0 - u * (1.0 - 1.0 / ha)).powf(-1.0 / alpha);
                (x.min(max)) as u32
            }
        }
    }
}

/// A [`FanoutDist`] with its inverse-CDF constants folded at catalog build
/// time, so the hot loop performs one uniform draw, one multiply, and one
/// `powf` instead of re-deriving `max^alpha` on every edge firing.
///
/// The precomputed subexpressions (`1 - 1/max^alpha` and `-1/alpha`) take
/// the same values the per-draw formula produces, so sampling is
/// bit-identical to [`FanoutDist::sample`] for the same rng state — the
/// determinism contract the golden-digest test pins down.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FanoutSampler {
    /// Always exactly `n` (already floored at 1) parallel calls.
    Fixed(u32),
    /// Bounded Pareto on `[1, max]` with the inverse CDF precomputed.
    Pareto {
        /// `max(max, 1)` as a float (the clamp ceiling).
        max: f64,
        /// `1 - 1 / max^alpha` (the uniform-draw coefficient).
        coef: f64,
        /// `-1 / alpha` (the inverse-CDF exponent).
        neg_inv_alpha: f64,
    },
}

impl FanoutSampler {
    /// Precomputes the sampler for one fan-out distribution.
    pub fn from_dist(dist: FanoutDist) -> Self {
        match dist {
            FanoutDist::Fixed(n) => FanoutSampler::Fixed(n.max(1)),
            FanoutDist::Pareto { max, alpha } => {
                let max = max.max(1) as f64;
                let ha = max.powf(alpha);
                FanoutSampler::Pareto {
                    max,
                    coef: 1.0 - 1.0 / ha,
                    neg_inv_alpha: -1.0 / alpha,
                }
            }
        }
    }

    /// Samples a fan-out count (≥ 1); bit-identical to the source
    /// [`FanoutDist::sample`].
    #[inline]
    pub fn sample(&self, rng: &mut Prng) -> u32 {
        match *self {
            FanoutSampler::Fixed(n) => n,
            FanoutSampler::Pareto {
                max,
                coef,
                neg_inv_alpha,
            } => {
                let u = rng.next_f64_open();
                let x = (1.0 - u * coef).powf(neg_inv_alpha);
                (x.min(max)) as u32
            }
        }
    }
}

/// One call edge in the static call graph.
#[derive(Debug, Clone, Copy)]
pub struct CallEdge {
    /// The method invoked downstream.
    pub target: MethodId,
    /// Probability the edge fires on a given invocation.
    pub prob: f64,
    /// Parallel fan-out when it fires.
    pub fanout: FanoutDist,
    /// Whether the caller blocks on the child (synchronous
    /// partition/aggregate) or fires and forgets (write-behind, cache
    /// fill). Async children still consume resources and appear in
    /// traces, but do not extend the parent's application time.
    pub blocking: bool,
}

/// One call edge as stored in the catalog's shared CSR edge table: the
/// construction-time [`CallEdge`] with its fan-out sampler precomputed.
#[derive(Debug, Clone, Copy)]
pub struct EdgeHot {
    /// The method invoked downstream.
    pub target: MethodId,
    /// Probability the edge fires on a given invocation.
    pub prob: f64,
    /// Precomputed parallel fan-out sampler.
    pub fanout: FanoutSampler,
    /// Whether the caller blocks on the child (see [`CallEdge`]).
    pub blocking: bool,
}

/// Static description of one RPC method.
#[derive(Debug, Clone)]
pub struct MethodSpec {
    /// Dense method id.
    pub id: MethodId,
    /// Owning service.
    pub service: ServiceId,
    /// Method name, e.g. `Write`.
    pub name: String,
    /// Main-path CPU work on a baseline machine, seconds.
    pub compute: LogNormal,
    /// Probability of the fast path (cache hit: tiny compute, no
    /// children).
    pub fast_path_prob: f64,
    /// Fast-path CPU work, seconds.
    pub fast_compute: LogNormal,
    /// Request payload size distribution, bytes.
    pub req_size: LogNormal,
    /// Response payload size distribution, bytes.
    pub resp_size: LogNormal,
    /// Weight of this method as a *root* entry point (0 = never a root).
    pub root_weight: f64,
    /// Hedging policy (enabled on popular leaf storage methods).
    pub hedge: HedgePolicy,
    /// The CPU work one invocation burns (seconds on the baseline CPU).
    ///
    /// Crucially this is *not* the handler's wall time: storage handlers
    /// spend most of their wall time waiting on devices, and a handler's
    /// CPU draw is set by its code, not by how long it waited. Sampling
    /// CPU work independently of wall time is what reproduces §4.2's
    /// finding that neither latency nor size predicts CPU cost.
    pub cpu_work: LogNormal,
}

/// Payload sizes are clamped to this range: one cache line (the smallest
/// RPC the paper observed) to 4 MiB.
pub const MIN_PAYLOAD: f64 = 64.0;
/// Upper payload clamp.
pub const MAX_PAYLOAD: f64 = 4.0 * 1024.0 * 1024.0;

/// Shared sampling kernels: [`MethodSpec`] (the cold, name-carrying spec)
/// and [`MethodHot`] (the `Copy` hot header the driver reads per span) must
/// draw identically, so both delegate here.
#[inline]
fn sample_compute_impl(
    compute: &LogNormal,
    fast_compute: &LogNormal,
    fast_path_prob: f64,
    rng: &mut Prng,
) -> (SimDuration, bool) {
    if rng.chance(fast_path_prob) {
        (SimDuration::from_secs_f64(fast_compute.sample(rng)), true)
    } else {
        (SimDuration::from_secs_f64(compute.sample(rng)), false)
    }
}

#[inline]
fn sample_payload_bytes_impl(size: &LogNormal, rng: &mut Prng) -> u64 {
    size.sample(rng).clamp(MIN_PAYLOAD, MAX_PAYLOAD) as u64
}

impl MethodSpec {
    /// Samples the CPU work of one invocation; returns `(work, fast)`
    /// where `fast` means the fast path fired (no children).
    pub fn sample_compute(&self, rng: &mut Prng) -> (SimDuration, bool) {
        sample_compute_impl(&self.compute, &self.fast_compute, self.fast_path_prob, rng)
    }

    /// Samples a request payload size in bytes.
    pub fn sample_request_bytes(&self, rng: &mut Prng) -> u64 {
        sample_payload_bytes_impl(&self.req_size, rng)
    }

    /// Samples a response payload size in bytes.
    pub fn sample_response_bytes(&self, rng: &mut Prng) -> u64 {
        sample_payload_bytes_impl(&self.resp_size, rng)
    }
}

/// The per-method hot header: everything `simulate_call` reads on every
/// span, packed into one `Copy` struct so the driver borrows it from the
/// catalog instead of cloning the `String`- and `Vec`-carrying
/// [`MethodSpec`]. The outgoing edges live in the catalog's shared CSR
/// edge table, addressed by the `[edge_start, edge_end)` range.
#[derive(Debug, Clone, Copy)]
pub struct MethodHot {
    /// Owning service.
    pub service: ServiceId,
    /// Main-path CPU work sampler (seconds).
    pub compute: LogNormal,
    /// Probability of the fast path.
    pub fast_path_prob: f64,
    /// Fast-path CPU work sampler (seconds).
    pub fast_compute: LogNormal,
    /// Request payload size sampler (bytes).
    pub req_size: LogNormal,
    /// Response payload size sampler (bytes).
    pub resp_size: LogNormal,
    /// Hedging policy.
    pub hedge: HedgePolicy,
    /// Per-invocation CPU draw sampler (see [`MethodSpec::cpu_work`]).
    pub cpu_work: LogNormal,
    /// Start of this method's slice in the shared edge table.
    edge_start: u32,
    /// End of this method's slice in the shared edge table.
    edge_end: u32,
}

impl MethodHot {
    /// Samples the CPU work of one invocation; returns `(work, fast)`.
    /// Bit-identical to [`MethodSpec::sample_compute`].
    #[inline]
    pub fn sample_compute(&self, rng: &mut Prng) -> (SimDuration, bool) {
        sample_compute_impl(&self.compute, &self.fast_compute, self.fast_path_prob, rng)
    }

    /// Samples a request payload size in bytes.
    #[inline]
    pub fn sample_request_bytes(&self, rng: &mut Prng) -> u64 {
        sample_payload_bytes_impl(&self.req_size, rng)
    }

    /// Samples a response payload size in bytes.
    #[inline]
    pub fn sample_response_bytes(&self, rng: &mut Prng) -> u64 {
        sample_payload_bytes_impl(&self.resp_size, rng)
    }
}

/// The per-service hot header mirrored from [`ServiceSpec`]: the flags and
/// probabilities `simulate_call` needs, with the payload handling already
/// folded into a [`MessageClass`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceHot {
    /// How the stack treats this service's payloads.
    pub class: MessageClass,
    /// Whether payloads are compressed (wire-byte computation).
    pub compressed: bool,
    /// Whether the service holds reserved cores.
    pub reserved_cores: bool,
    /// Probability a call leaves the client's cluster despite local
    /// deployment.
    pub remote_call_prob: f64,
    /// Probability a call chases single-homed data to an arbitrary
    /// deployed cluster.
    pub data_miss_prob: f64,
}

/// Catalog generation parameters.
#[derive(Debug, Clone)]
pub struct CatalogConfig {
    /// Total number of methods (named + filler). Must be ≥ 300.
    pub total_methods: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for CatalogConfig {
    fn default() -> Self {
        CatalogConfig {
            total_methods: 2_000,
            seed: 0xF1EE7,
        }
    }
}

/// The full catalog: services, methods, and the Table 1 pinned entries.
///
/// Alongside the cold specs, the catalog interns the hot-path view built
/// once at generation time: `Copy` per-method and per-service headers plus
/// one flat CSR edge table shared by all methods. The driver's inner loop
/// reads only these — no clones, no per-span allocation.
#[derive(Debug, Clone)]
pub struct Catalog {
    services: Vec<ServiceSpec>,
    methods: Vec<MethodSpec>,
    table1: Vec<Table1Entry>,
    /// Per-method hot headers, indexed by `MethodId`.
    hot: Vec<MethodHot>,
    /// Per-service hot headers, indexed by `ServiceId`.
    service_hot: Vec<ServiceHot>,
    /// Flat edge table; each method owns the `[edge_start, edge_end)`
    /// slice recorded in its hot header.
    edge_table: Vec<EdgeHot>,
}

/// One row of the paper's Table 1.
#[derive(Debug, Clone)]
pub struct Table1Entry {
    /// Category label ("Storage", ...).
    pub category: &'static str,
    /// Server service name.
    pub server: &'static str,
    /// Client service name.
    pub client: &'static str,
    /// Nominal RPC size label from the table.
    pub rpc_size: &'static str,
    /// Method description from the table.
    pub description: &'static str,
    /// The pinned method id in this catalog.
    pub method: MethodId,
}

/// Helper: a log-normal over seconds from a median in microseconds.
fn ln_us(median_us: f64, sigma: f64) -> LogNormal {
    LogNormal::from_median_sigma(median_us * 1e-6, sigma).expect("valid lognormal")
}

/// Helper: a log-normal over bytes from a median in bytes.
fn ln_bytes(median: f64, sigma: f64) -> LogNormal {
    LogNormal::from_median_sigma(median, sigma).expect("valid lognormal")
}

impl Catalog {
    /// Generates a catalog for the given topology.
    ///
    /// # Panics
    ///
    /// Panics if `config.total_methods < 300` (the named services alone
    /// need that many).
    pub fn generate(config: &CatalogConfig, topology: &Topology) -> Catalog {
        assert!(
            config.total_methods >= 300,
            "catalog needs at least 300 methods"
        );
        Builder::new(config, topology).build()
    }

    /// All services.
    pub fn services(&self) -> &[ServiceSpec] {
        &self.services
    }

    /// All methods.
    pub fn methods(&self) -> &[MethodSpec] {
        &self.methods
    }

    /// Looks up a service.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn service(&self, id: ServiceId) -> &ServiceSpec {
        &self.services[id.0 as usize]
    }

    /// Looks up a method.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn method(&self, id: MethodId) -> &MethodSpec {
        &self.methods[id.0 as usize]
    }

    /// The hot header of a method.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[inline]
    pub fn hot(&self, id: MethodId) -> &MethodHot {
        &self.hot[id.0 as usize]
    }

    /// The hot header of a service.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[inline]
    pub fn service_hot(&self, id: ServiceId) -> ServiceHot {
        self.service_hot[id.0 as usize]
    }

    /// The outgoing call edges of a method (a slice of the shared edge
    /// table).
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[inline]
    pub fn edges(&self, id: MethodId) -> &[EdgeHot] {
        let h = &self.hot[id.0 as usize];
        &self.edge_table[h.edge_start as usize..h.edge_end as usize]
    }

    /// Looks up a service by name.
    pub fn service_by_name(&self, name: &str) -> Option<&ServiceSpec> {
        self.services.iter().find(|s| s.name == name)
    }

    /// The pinned Table 1 rows.
    pub fn table1(&self) -> &[Table1Entry] {
        &self.table1
    }

    /// Number of methods.
    pub fn num_methods(&self) -> usize {
        self.methods.len()
    }

    /// Number of services.
    pub fn num_services(&self) -> usize {
        self.services.len()
    }
}

/// Internal catalog builder.
struct Builder<'a> {
    topology: &'a Topology,
    rng: Prng,
    services: Vec<ServiceSpec>,
    methods: Vec<MethodSpec>,
    /// Outgoing edges per method, parallel to `methods`; flattened into
    /// the catalog's CSR edge table by [`Builder::finish`].
    edges: Vec<Vec<CallEdge>>,
    table1: Vec<Table1Entry>,
    total_methods: usize,
}

impl<'a> Builder<'a> {
    fn new(config: &CatalogConfig, topology: &'a Topology) -> Self {
        Builder {
            topology,
            rng: Prng::seed_from(config.seed).stream(0xCA7A_1076),
            services: Vec::new(),
            methods: Vec::new(),
            edges: Vec::new(),
            table1: Vec::new(),
            total_methods: config.total_methods,
        }
    }

    /// Picks `n` deployment clusters deterministically.
    fn pick_clusters(&mut self, n: usize) -> Vec<ClusterId> {
        let mut ids = self.topology.cluster_ids();
        self.rng.shuffle(&mut ids);
        ids.truncate(n.clamp(1, ids.len()));
        ids.sort();
        ids
    }

    fn add_service(
        &mut self,
        name: &str,
        category: ServiceCategory,
        tier: u8,
        clusters: usize,
        workers: u32,
    ) -> ServiceId {
        let id = ServiceId(self.services.len() as u16);
        let clusters = self.pick_clusters(clusters);
        let (reserved, compressed, remote_prob, skew, bg_service, bg_scv) = match category {
            ServiceCategory::Storage => {
                (false, true, 0.10, 0.05, SimDuration::from_micros(400), 4.0)
            }
            ServiceCategory::ComputeIntensive => {
                (false, true, 0.05, 0.30, SimDuration::from_millis(5), 6.0)
            }
            ServiceCategory::LatencySensitive => {
                (true, true, 0.02, 0.25, SimDuration::from_micros(100), 2.0)
            }
            ServiceCategory::Frontend => {
                (false, true, 0.08, 0.05, SimDuration::from_millis(1), 4.0)
            }
            ServiceCategory::Infra => (false, true, 0.10, 0.08, SimDuration::from_millis(2), 5.0),
        };
        self.services.push(ServiceSpec {
            id,
            name: name.to_string(),
            category,
            tier,
            clusters,
            reserved_cores: reserved,
            compressed,
            encrypted: true,
            workers,
            remote_call_prob: remote_prob,
            machine_skew: skew,
            background_service: bg_service,
            background_scv: bg_scv,
            util_bias: 1.0,
            blob_payload: false,
            data_miss_prob: 0.0015,
        });
        id
    }

    /// Marks a service as running hot (queueing-heavy).
    fn bias_utilization(&mut self, service: ServiceId, bias: f64) {
        self.services[service.0 as usize].util_bias = bias;
    }

    /// Marks a service's payloads as pre-compressed opaque blobs.
    fn blob_payloads(&mut self, service: ServiceId) {
        let svc = &mut self.services[service.0 as usize];
        svc.blob_payload = true;
        svc.compressed = false;
    }

    #[allow(clippy::too_many_arguments)]
    fn add_method(
        &mut self,
        service: ServiceId,
        name: &str,
        compute: LogNormal,
        fast_path_prob: f64,
        req_size: LogNormal,
        resp_size: LogNormal,
        root_weight: f64,
        hedge: HedgePolicy,
    ) -> MethodId {
        let id = MethodId(self.methods.len() as u32);
        // The fast path (cache hit / validation short-circuit) is a
        // fraction of the main path, floored at a few microseconds.
        let fast_median_us = (compute.median() * 1e6 * 0.2).clamp(4.0, 120.0);
        // CPU work per invocation. Compute-bound categories burn wall
        // time; storage/infra/frontend handlers mostly wait on devices,
        // so their CPU draw is an *independent* per-method property.
        let cpu_work = match self.services[service.0 as usize].category {
            ServiceCategory::ComputeIntensive => {
                LogNormal::from_median_sigma((compute.median() * 0.40).max(1e-6), compute.sigma())
                    .expect("valid cpu work")
            }
            ServiceCategory::LatencySensitive => {
                LogNormal::from_median_sigma((compute.median() * 0.85).max(1e-6), compute.sigma())
                    .expect("valid cpu work")
            }
            _ => {
                let median_us =
                    (400.0 * (1.1 * self.rng.next_gaussian()).exp()).clamp(20.0, 20_000.0);
                ln_us(median_us, 1.0)
            }
        };
        self.methods.push(MethodSpec {
            id,
            service,
            name: name.to_string(),
            compute,
            fast_path_prob,
            fast_compute: ln_us(fast_median_us, 0.7),
            req_size,
            resp_size,
            root_weight,
            hedge,
            cpu_work,
        });
        self.edges.push(Vec::new());
        id
    }

    /// Adds an edge from every method of `from` service to a random
    /// method of `to` service.
    fn link_services(&mut self, from: ServiceId, to: ServiceId, prob: f64, fanout: FanoutDist) {
        self.link_services_mode(from, to, prob, fanout, true);
    }

    /// Like [`Builder::link_services`], with explicit blocking semantics.
    fn link_services_mode(
        &mut self,
        from: ServiceId,
        to: ServiceId,
        prob: f64,
        fanout: FanoutDist,
        blocking: bool,
    ) {
        let targets: Vec<MethodId> = self
            .methods
            .iter()
            .filter(|m| m.service == to)
            .map(|m| m.id)
            .collect();
        if targets.is_empty() {
            return;
        }
        let sources: Vec<MethodId> = self
            .methods
            .iter()
            .filter(|m| m.service == from)
            .map(|m| m.id)
            .collect();
        for src in sources {
            // Traffic concentrates on each service's flagship method
            // (the first one registered): that is what drives the
            // paper's extreme popularity skew, where the top-10 methods
            // take 58% of all calls.
            let target = if from == to {
                // Self-replication chains re-invoke the same method
                // (a disk Write replicates Writes).
                src
            } else if self.rng.chance(0.6) {
                targets[0]
            } else {
                *self.rng.choose(&targets)
            };
            self.edges[src.0 as usize].push(CallEdge {
                target,
                prob,
                fanout,
                blocking,
            });
        }
    }

    fn build(mut self) -> Catalog {
        let burst = |max, alpha| FanoutDist::Pareto { max, alpha };

        // ---- Tier 3: the storage layer ----------------------------------
        let network_disk = self.add_service("NetworkDisk", ServiceCategory::Storage, 3, 26, 24);
        self.blob_payloads(network_disk);
        // The single most popular method in the fleet: Network Disk Write
        // (28% of all calls in the paper). Low latency, 32 kB requests,
        // tiny acks, hedged.
        let disk_hedge = HedgePolicy::after(SimDuration::from_millis(5), 0.13);
        let disk_write = self.add_method(
            network_disk,
            "Write",
            ln_us(700.0, 0.9),
            0.10,
            ln_bytes(32.0 * 1024.0, 0.8),
            ln_bytes(96.0, 0.5),
            // Direct root traffic: log writers, batch jobs.
            270.0,
            disk_hedge,
        );
        let disk_read = self.add_method(
            network_disk,
            "Read",
            ln_us(800.0, 1.0),
            0.15,
            ln_bytes(256.0, 0.6),
            ln_bytes(32.0 * 1024.0, 1.0),
            60.0,
            disk_hedge,
        );
        for i in 0..28 {
            self.add_method(
                network_disk,
                &format!("DiskOp{i}"),
                ln_us(500.0 * (1.0 + i as f64 / 4.0), 1.0),
                0.1,
                ln_bytes(2048.0, 1.0),
                ln_bytes(1024.0, 1.2),
                if i < 4 { 4.0 } else { 0.2 },
                HedgePolicy::disabled(),
            );
        }

        let ssd_cache = self.add_service("SSDCache", ServiceCategory::Storage, 3, 23, 6);
        self.bias_utilization(ssd_cache, 1.5);
        let ssd_lookup = self.add_method(
            ssd_cache,
            "Lookup",
            ln_us(220.0, 0.9),
            0.2,
            ln_bytes(400.0, 0.5),
            ln_bytes(1800.0, 1.2),
            15.0,
            HedgePolicy::after(SimDuration::from_millis(6), 0.13),
        );
        for i in 0..9 {
            self.add_method(
                ssd_cache,
                &format!("CacheOp{i}"),
                ln_us(300.0 + 80.0 * i as f64, 0.9),
                0.15,
                ln_bytes(512.0, 0.8),
                ln_bytes(2048.0, 1.2),
                0.2,
                HedgePolicy::disabled(),
            );
        }

        let ml_inference =
            self.add_service("MLInference", ServiceCategory::ComputeIntensive, 3, 45, 8);
        let ml_infer = self.add_method(
            ml_inference,
            "Infer",
            ln_us(28_000.0, 0.8),
            0.03,
            ln_bytes(512.0, 0.6),
            ln_bytes(900.0, 0.8),
            0.0,
            HedgePolicy::disabled(),
        );
        for i in 0..12 {
            self.add_method(
                ml_inference,
                &format!("Model{i}"),
                ln_us(8_000.0 * (1.0 + i as f64), 0.9),
                0.02,
                ln_bytes(768.0, 0.7),
                ln_bytes(1200.0, 0.9),
                0.0,
                HedgePolicy::disabled(),
            );
        }

        // ---- Tier 2: data services ---------------------------------------
        let bigtable = self.add_service("Bigtable", ServiceCategory::Storage, 2, 23, 20);
        let bt_search = self.add_method(
            bigtable,
            "SearchValue",
            ln_us(900.0, 1.0),
            0.25,
            ln_bytes(1024.0, 0.6),
            ln_bytes(1400.0, 1.2),
            25.0,
            HedgePolicy::after(SimDuration::from_millis(12), 0.1),
        );
        for i in 0..22 {
            self.add_method(
                bigtable,
                &format!("TabletOp{i}"),
                ln_us(1200.0 + 300.0 * i as f64, 1.0),
                0.2,
                ln_bytes(1024.0, 0.9),
                ln_bytes(2048.0, 1.3),
                if i < 3 { 3.0 } else { 0.1 },
                HedgePolicy::disabled(),
            );
        }

        let spanner = self.add_service("Spanner", ServiceCategory::Storage, 2, 21, 20);
        self.services[spanner.0 as usize].data_miss_prob = 0.02;
        self.services[spanner.0 as usize].machine_skew = 0.35;
        let sp_read = self.add_method(
            spanner,
            "ReadRows",
            ln_us(1500.0, 1.0),
            0.2,
            ln_bytes(800.0, 0.6),
            ln_bytes(2600.0, 1.3),
            25.0,
            HedgePolicy::after(SimDuration::from_millis(15), 0.1),
        );
        for i in 0..26 {
            self.add_method(
                spanner,
                &format!("TxnOp{i}"),
                ln_us(2000.0 + 500.0 * i as f64, 1.0),
                0.15,
                ln_bytes(900.0, 0.9),
                ln_bytes(1500.0, 1.2),
                if i < 3 { 2.0 } else { 0.1 },
                HedgePolicy::disabled(),
            );
        }

        let video_meta = self.add_service("VideoMetadata", ServiceCategory::Storage, 2, 17, 6);
        self.bias_utilization(video_meta, 1.5);
        let vm_get = self.add_method(
            video_meta,
            "GetMetadata",
            ln_us(600.0, 0.9),
            0.25,
            ln_bytes(32.0 * 1024.0, 0.7),
            ln_bytes(8.0 * 1024.0, 1.1),
            0.0,
            HedgePolicy::disabled(),
        );
        for i in 0..10 {
            self.add_method(
                video_meta,
                &format!("MetaOp{i}"),
                ln_us(800.0 + 200.0 * i as f64, 0.9),
                0.2,
                ln_bytes(4096.0, 0.9),
                ln_bytes(4096.0, 1.2),
                0.0,
                HedgePolicy::disabled(),
            );
        }

        let lock_service = self.add_service("LockService", ServiceCategory::Infra, 2, 13, 8);
        for i in 0..8 {
            self.add_method(
                lock_service,
                &format!("LockOp{i}"),
                ln_us(700.0 + 150.0 * i as f64, 0.8),
                0.3,
                ln_bytes(256.0, 0.5),
                ln_bytes(192.0, 0.6),
                0.3,
                HedgePolicy::disabled(),
            );
        }

        // ---- Tier 1: application backends --------------------------------
        let kv_store = self.add_service("KVStore", ServiceCategory::LatencySensitive, 1, 6, 16);
        let kv_search = self.add_method(
            kv_store,
            "SearchValue",
            ln_us(15.0, 0.6),
            0.35,
            ln_bytes(128.0, 0.4),
            ln_bytes(3000.0, 1.1),
            35.0,
            HedgePolicy::after(SimDuration::from_millis(2), 0.12),
        );
        for i in 0..10 {
            self.add_method(
                kv_store,
                &format!("KvOp{i}"),
                ln_us(18.0 + 6.0 * i as f64, 0.6),
                0.3,
                ln_bytes(128.0, 0.5),
                ln_bytes(512.0, 1.0),
                if i < 2 { 6.0 } else { 0.3 },
                HedgePolicy::after(SimDuration::from_millis(3), 0.1),
            );
        }

        let f1 = self.add_service("F1", ServiceCategory::ComputeIntensive, 1, 45, 12);
        let f1_process = self.add_method(
            f1,
            "ProcessDataPacket",
            // Queries of wildly varying complexity behind one method:
            // very wide main mode (the paper's largest P95/median ratio).
            ln_us(9_000.0, 1.8),
            0.15,
            ln_bytes(75.0, 0.3),
            ln_bytes(2048.0, 1.4),
            15.0,
            HedgePolicy::after(SimDuration::from_millis(80), 0.2),
        );
        for i in 0..17 {
            self.add_method(
                f1,
                &format!("Query{i}"),
                ln_us(6_000.0 * (1.0 + i as f64 / 2.0), 1.5),
                0.1,
                ln_bytes(300.0, 0.8),
                ln_bytes(4096.0, 1.4),
                if i < 3 { 2.0 } else { 0.2 },
                HedgePolicy::disabled(),
            );
        }

        let bigquery = self.add_service("BigQuery", ServiceCategory::ComputeIntensive, 1, 19, 12);
        let bq_query = self.add_method(
            bigquery,
            "RunQuery",
            ln_us(40_000.0, 1.3),
            0.05,
            ln_bytes(1500.0, 0.7),
            ln_bytes(16.0 * 1024.0, 1.5),
            8.0,
            HedgePolicy::disabled(),
        );
        for i in 0..20 {
            self.add_method(
                bigquery,
                &format!("Stage{i}"),
                ln_us(20_000.0 * (1.0 + i as f64 / 3.0), 1.2),
                0.05,
                ln_bytes(2048.0, 0.9),
                ln_bytes(8192.0, 1.4),
                if i < 2 { 1.5 } else { 0.1 },
                HedgePolicy::disabled(),
            );
        }

        // ---- Tier 0: entry points ----------------------------------------
        let web_frontend = self.add_service("WebFrontend", ServiceCategory::Frontend, 0, 14, 16);
        for i in 0..12 {
            self.add_method(
                web_frontend,
                &format!("Handle{i}"),
                ln_us(800.0 + 300.0 * i as f64, 0.9),
                0.15,
                ln_bytes(1800.0, 0.8),
                ln_bytes(512.0, 1.0),
                if i < 4 { 20.0 } else { 4.0 },
                HedgePolicy::disabled(),
            );
        }
        let video_search = self.add_service("VideoSearch", ServiceCategory::Frontend, 0, 12, 16);
        let vs_search = self.add_method(
            video_search,
            "Search",
            ln_us(1500.0, 0.9),
            0.1,
            ln_bytes(900.0, 0.6),
            ln_bytes(6.0 * 1024.0, 1.1),
            18.0,
            HedgePolicy::disabled(),
        );
        let ml_client = self.add_service("MLClient", ServiceCategory::Frontend, 0, 10, 8);
        let mlc_request = self.add_method(
            ml_client,
            "RequestInference",
            ln_us(700.0, 0.8),
            0.05,
            ln_bytes(600.0, 0.6),
            ln_bytes(900.0, 0.8),
            1.2,
            HedgePolicy::disabled(),
        );
        let reco = self.add_service("Recommendation", ServiceCategory::Frontend, 0, 10, 16);
        let reco_serve = self.add_method(
            reco,
            "Recommend",
            ln_us(1200.0, 0.9),
            0.1,
            ln_bytes(700.0, 0.6),
            ln_bytes(3.0 * 1024.0, 1.0),
            16.0,
            HedgePolicy::disabled(),
        );
        let netinfo = self.add_service("NetworkInfoService", ServiceCategory::Frontend, 0, 12, 8);
        let ni_lookup = self.add_method(
            netinfo,
            "LookupRows",
            ln_us(900.0, 0.8),
            0.1,
            ln_bytes(800.0, 0.5),
            ln_bytes(1200.0, 0.9),
            6.0,
            HedgePolicy::disabled(),
        );

        // ---- The pinned call chains of Table 1 ---------------------------
        // Recommendation -> KV-Store -> Bigtable -> Network Disk.
        self.link_services(reco, kv_store, 0.9, burst(24, 0.9));
        self.link_services_mode(kv_store, bigtable, 0.25, FanoutDist::Fixed(1), false);
        self.link_services(bigtable, network_disk, 0.8, burst(8, 0.9));
        // BigQuery -> SSD cache (streaming lookups) and the disk.
        self.link_services(bigquery, ssd_cache, 0.9, burst(32, 0.8));
        self.link_services(bigquery, network_disk, 0.6, burst(16, 0.8));
        // Video Search -> Video Metadata -> storage.
        self.link_services(video_search, video_meta, 0.9, burst(16, 0.9));
        self.link_services(video_meta, network_disk, 0.2, burst(3, 1.2));
        // Network info service -> Spanner -> disk.
        self.link_services(netinfo, spanner, 0.95, burst(8, 1.0));
        self.link_services(spanner, network_disk, 0.6, burst(6, 1.0));
        // ML client -> ML inference.
        self.link_services(ml_client, ml_inference, 0.95, burst(4, 1.2));
        // Storage-layer replication: disk writes replicate to peer disk
        // servers, which is what gives even "leaf" storage methods a
        // heavy descendant tail (Fig. 4) and makes Network Disk methods
        // the fleet's most-called RPCs.
        self.link_services(network_disk, network_disk, 0.35, FanoutDist::Fixed(2));
        self.link_services_mode(ssd_cache, network_disk, 0.20, FanoutDist::Fixed(1), false);
        // F1 -> F1 (one self-hop, per Table 1) and Spanner underneath.
        self.link_services(f1, f1, 0.25, burst(12, 0.9));
        self.link_services(f1, spanner, 0.5, burst(8, 1.0));
        // Frontends spray across the backends.
        self.link_services(web_frontend, kv_store, 0.6, burst(16, 0.9));
        self.link_services(web_frontend, f1, 0.25, burst(4, 1.1));
        self.link_services(web_frontend, bigtable, 0.4, burst(12, 0.9));
        self.link_services(web_frontend, lock_service, 0.1, FanoutDist::Fixed(1));

        self.table1 = vec![
            Table1Entry {
                category: "Storage",
                server: "Bigtable",
                client: "KV-Store",
                rpc_size: "1 kB",
                description: "Search value",
                method: bt_search,
            },
            Table1Entry {
                category: "Storage",
                server: "Network Disk",
                client: "Bigtable",
                rpc_size: "32 kB",
                description: "Read from SSD",
                method: disk_read,
            },
            Table1Entry {
                category: "Storage",
                server: "SSD cache",
                client: "BigQuery",
                rpc_size: "400 B",
                description: "Look up streaming data",
                method: ssd_lookup,
            },
            Table1Entry {
                category: "Storage",
                server: "Video Metadata",
                client: "Video Search",
                rpc_size: "32 kB",
                description: "Get metadata",
                method: vm_get,
            },
            Table1Entry {
                category: "Storage",
                server: "Spanner",
                client: "Network information service",
                rpc_size: "800 B",
                description: "Read rows",
                method: sp_read,
            },
            Table1Entry {
                category: "Compute-intensive",
                server: "F1",
                client: "F1",
                rpc_size: "75 B",
                description: "Process data packet",
                method: f1_process,
            },
            Table1Entry {
                category: "Compute-intensive",
                server: "ML Inference",
                client: "ML Client",
                rpc_size: "512 B",
                description: "Perform inference",
                method: ml_infer,
            },
            Table1Entry {
                category: "Latency-sensitive",
                server: "KV-Store",
                client: "Recommendation service",
                rpc_size: "128 B",
                description: "Search value",
                method: kv_search,
            },
        ];
        // Keep references that are pinned but not in Table 1 alive for
        // documentation purposes.
        let _ = (
            disk_write,
            f1_process,
            bq_query,
            vs_search,
            mlc_request,
            reco_serve,
            ni_lookup,
        );

        self.add_filler_services();
        self.wire_filler_edges();
        self.finish()
    }

    /// Interns the hot-path view: flattens the per-method edge lists into
    /// one CSR table (with fan-out samplers precomputed) and mirrors the
    /// per-method / per-service hot headers out of the cold specs.
    fn finish(self) -> Catalog {
        let Builder {
            services,
            methods,
            edges,
            table1,
            ..
        } = self;
        let mut edge_table = Vec::with_capacity(edges.iter().map(Vec::len).sum());
        let mut hot = Vec::with_capacity(methods.len());
        for (m, m_edges) in methods.iter().zip(&edges) {
            let edge_start = edge_table.len() as u32;
            edge_table.extend(m_edges.iter().map(|e| EdgeHot {
                target: e.target,
                prob: e.prob,
                fanout: FanoutSampler::from_dist(e.fanout),
                blocking: e.blocking,
            }));
            hot.push(MethodHot {
                service: m.service,
                compute: m.compute,
                fast_path_prob: m.fast_path_prob,
                fast_compute: m.fast_compute,
                req_size: m.req_size,
                resp_size: m.resp_size,
                hedge: m.hedge,
                cpu_work: m.cpu_work,
                edge_start,
                edge_end: edge_table.len() as u32,
            });
        }
        let service_hot = services
            .iter()
            .map(|s| ServiceHot {
                class: MessageClass {
                    compressed: s.compressed,
                    encrypted: s.encrypted,
                    blob: s.blob_payload,
                },
                compressed: s.compressed,
                reserved_cores: s.reserved_cores,
                remote_call_prob: s.remote_call_prob,
                data_miss_prob: s.data_miss_prob,
            })
            .collect();
        Catalog {
            services,
            methods,
            table1,
            hot,
            service_hot,
            edge_table,
        }
    }

    /// Adds synthetic filler services until the method budget is met.
    ///
    /// Filler root weights are normalised so the whole filler population
    /// contributes a fixed share of root traffic regardless of catalog
    /// size — the popularity skew of Fig. 3 must not dilute at 10,000
    /// methods.
    fn add_filler_services(&mut self) {
        let mut remaining = self.total_methods.saturating_sub(self.methods.len());
        let weight_unit = 70.0 / remaining.max(1) as f64;
        let mut idx = 0usize;
        while remaining > 0 {
            let methods_here = remaining.min(12 + self.rng.index(28));
            // Spread filler across tiers 1-3, weighted toward the deeper
            // tiers (most of the fleet is data processing).
            let tier = match idx % 10 {
                0..=2 => 1,
                3..=5 => 2,
                _ => 3,
            };
            let category = match idx % 5 {
                0 => ServiceCategory::Storage,
                1 => ServiceCategory::ComputeIntensive,
                2 => ServiceCategory::Frontend,
                _ => ServiceCategory::Infra,
            };
            let clusters = 5 + self.rng.index(20);
            let workers = 8 + self.rng.index(16) as u32;
            let service = self.add_service(
                &format!("svc-{tier}-{idx}"),
                category,
                tier,
                clusters,
                workers,
            );
            if self.rng.chance(0.15) {
                // Single-homed data: calls frequently cross the WAN.
                self.services[service.0 as usize].data_miss_prob = 0.08;
            }
            for m in 0..methods_here {
                // Per-method main-path medians: log-normal across methods
                // with median ~25 ms, giving ~10% of methods below ~4 ms
                // (Fig. 2's anchor: 90% of methods have median >= 10.7 ms
                // once the pipeline adds its floor).
                let z = self.rng.next_gaussian();
                let median_us = (14_000.0 * (1.25f64 * z).exp()).clamp(150.0, 2.2e6);
                // Slower methods vary relatively less (Fig. 2's narrow
                // slow tail): sigma shrinks with the median.
                let sigma = (1.55 - 0.11 * (median_us / 1000.0).max(0.1).ln()).clamp(0.6, 1.6);
                let req_med = (2200.0 * (1.1f64 * self.rng.next_gaussian()).exp())
                    .clamp(MIN_PAYLOAD, 256.0 * 1024.0);
                let resp_med = (600.0 * (1.3f64 * self.rng.next_gaussian()).exp())
                    .clamp(MIN_PAYLOAD, 256.0 * 1024.0);
                // Filler methods keep the popularity tail thin but alive:
                // tier-1 leaders take roots; every method sees at least a
                // trickle of direct traffic (internal batch clients), so
                // the per-method analyses have samples beyond the pinned
                // chains.
                let root_weight = weight_unit * if tier == 1 && m < 3 { 6.0 } else { 1.0 };
                let fast_prob = 0.04 + self.rng.next_f64() * 0.2;
                let req_sigma = 0.9 + self.rng.next_f64() * 0.4;
                let resp_sigma = 1.1 + self.rng.next_f64() * 0.5;
                self.add_method(
                    service,
                    &format!("Op{m}"),
                    ln_us(median_us, sigma),
                    fast_prob,
                    ln_bytes(req_med, req_sigma),
                    ln_bytes(resp_med, resp_sigma),
                    root_weight,
                    HedgePolicy::disabled(),
                );
            }
            remaining -= methods_here;
            idx += 1;
        }
    }

    /// Gives filler methods edges into deeper tiers.
    fn wire_filler_edges(&mut self) {
        // Collect candidate targets per tier.
        let mut by_tier: Vec<Vec<MethodId>> = vec![Vec::new(); 5];
        for m in &self.methods {
            let tier = self.services[m.service.0 as usize].tier as usize;
            by_tier[tier].push(m.id);
        }
        let method_count = self.methods.len();
        for i in 0..method_count {
            if !self.edges[i].is_empty() {
                continue; // Named chains already wired.
            }
            let tier = self.services[self.methods[i].service.0 as usize].tier as usize;
            if tier >= 3 {
                // Storage-tier filler methods call peers (replication,
                // repair, secondary lookups): a near-critical branching
                // process — offspring mean just below 1 — whose totals
                // are power-law tailed. That is the mechanism behind the
                // paper's finding that 90% of methods have P99 descendant
                // counts above 1,000 while medians stay small.
                let target = *self.rng.choose(&by_tier[3]);
                let alpha = 1.0 + self.rng.next_f64() * 0.3;
                self.edges[i].push(CallEdge {
                    target,
                    prob: 0.30 + self.rng.next_f64() * 0.15,
                    fanout: FanoutDist::Pareto { max: 40, alpha },
                    blocking: true,
                });
                continue;
            }
            // 1-3 edges into strictly deeper tiers.
            let n_edges = 1 + self.rng.index(3);
            for _ in 0..n_edges {
                let deeper = tier + 1 + self.rng.index(3 - tier);
                if by_tier[deeper].is_empty() {
                    continue;
                }
                let target = *self.rng.choose(&by_tier[deeper]);
                let alpha = 0.75 + self.rng.next_f64() * 0.5;
                let max = 8 + self.rng.index(56) as u32;
                self.edges[i].push(CallEdge {
                    target,
                    prob: 0.4 + self.rng.next_f64() * 0.6,
                    fanout: FanoutDist::Pareto { max, alpha },
                    blocking: true,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpclens_netsim::topology::Topology;

    fn catalog(methods: usize) -> Catalog {
        let topo = Topology::default_world(1);
        Catalog::generate(
            &CatalogConfig {
                total_methods: methods,
                seed: 42,
            },
            &topo,
        )
    }

    #[test]
    fn generates_requested_method_count() {
        let c = catalog(800);
        assert!(c.num_methods() >= 800, "{} methods", c.num_methods());
        assert!(c.num_methods() < 850);
        assert!(c.num_services() > 15);
    }

    #[test]
    fn is_deterministic_per_seed() {
        let a = catalog(500);
        let b = catalog(500);
        assert_eq!(a.num_methods(), b.num_methods());
        for (ma, mb) in a.methods().iter().zip(b.methods()) {
            assert_eq!(ma.name, mb.name);
            assert_eq!(a.edges(ma.id).len(), b.edges(mb.id).len());
        }
    }

    #[test]
    fn table1_has_eight_pinned_rows() {
        let c = catalog(400);
        assert_eq!(c.table1().len(), 8);
        for row in c.table1() {
            let m = c.method(row.method);
            let s = c.service(m.service);
            // The pinned method's service matches the row's server name
            // modulo formatting.
            let canon = row.server.replace([' ', '-'], "").to_lowercase();
            let got = s.name.replace([' ', '-'], "").to_lowercase();
            assert!(
                canon.contains(&got) || got.contains(&canon),
                "{} vs {}",
                row.server,
                s.name
            );
        }
    }

    #[test]
    fn kv_store_is_the_only_reserved_core_service() {
        let c = catalog(400);
        let reserved: Vec<&str> = c
            .services()
            .iter()
            .filter(|s| s.reserved_cores)
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(reserved, vec!["KVStore"]);
    }

    #[test]
    fn edges_only_point_to_equal_or_deeper_tiers() {
        let c = catalog(1000);
        for m in c.methods() {
            let src_tier = c.service(m.service).tier;
            for e in c.edges(m.id) {
                let dst_tier = c.service(c.method(e.target).service).tier;
                assert!(
                    dst_tier >= src_tier,
                    "{} (tier {src_tier}) -> {} (tier {dst_tier})",
                    m.name,
                    c.method(e.target).name
                );
            }
        }
    }

    #[test]
    fn leaf_tier_edges_stay_within_the_storage_layer() {
        // Storage methods may call peers (replication), but never back up
        // the stack, and always with sub-critical firing probability.
        let c = catalog(600);
        for m in c.methods() {
            if c.service(m.service).tier >= 3 {
                for e in c.edges(m.id) {
                    assert!(
                        c.service(c.method(e.target).service).tier >= 3,
                        "{} calls up-stack",
                        m.name
                    );
                    assert!(e.prob <= 0.5, "{} peer edge too hot", m.name);
                }
            }
        }
    }

    #[test]
    fn f1_self_edge_exists() {
        let c = catalog(400);
        let f1 = c.service_by_name("F1").unwrap();
        let has_self = c.methods().iter().filter(|m| m.service == f1.id).any(|m| {
            c.edges(m.id)
                .iter()
                .any(|e| c.method(e.target).service == f1.id)
        });
        assert!(has_self, "F1 must call F1 (Table 1)");
    }

    #[test]
    fn popular_methods_are_fast_methods() {
        // The anticorrelation that drives Fig. 3: compute medians of the
        // heavily-weighted methods sit well below the catalog median.
        let c = catalog(1000);
        let mut weighted: Vec<(f64, f64)> = c
            .methods()
            .iter()
            .map(|m| (m.root_weight, m.compute.median()))
            .collect();
        weighted.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
        let top_median: f64 = weighted[..10].iter().map(|w| w.1).sum::<f64>() / 10.0;
        let all_median: f64 = weighted.iter().map(|w| w.1).sum::<f64>() / weighted.len() as f64;
        assert!(
            top_median < all_median / 3.0,
            "top {top_median}, all {all_median}"
        );
    }

    #[test]
    fn sizes_sample_within_clamps() {
        let c = catalog(400);
        let mut rng = Prng::seed_from(7);
        for m in c.methods().iter().take(50) {
            for _ in 0..100 {
                let req = m.sample_request_bytes(&mut rng);
                let resp = m.sample_response_bytes(&mut rng);
                assert!((64..=4 * 1024 * 1024).contains(&req));
                assert!((64..=4 * 1024 * 1024).contains(&resp));
            }
        }
    }

    #[test]
    fn fast_path_produces_bimodal_compute() {
        let c = catalog(400);
        let mut rng = Prng::seed_from(8);
        // Use a filler method with a known fast-path probability > 0.
        let m = c
            .methods()
            .iter()
            .find(|m| m.fast_path_prob > 0.1 && m.compute.median() > 0.005)
            .unwrap();
        let mut fast = 0;
        let n = 10_000;
        for _ in 0..n {
            let (work, is_fast) = m.sample_compute(&mut rng);
            if is_fast {
                fast += 1;
                assert!(work < SimDuration::from_millis(2), "fast path {work}");
            }
        }
        let rate = fast as f64 / n as f64;
        assert!((rate - m.fast_path_prob).abs() < 0.03, "fast rate {rate}");
    }

    #[test]
    fn fanout_dists_sample_in_bounds() {
        let mut rng = Prng::seed_from(9);
        let f = FanoutDist::Pareto {
            max: 48,
            alpha: 0.8,
        };
        let mut saw_big = false;
        for _ in 0..10_000 {
            let k = f.sample(&mut rng);
            assert!((1..=48).contains(&k));
            if k > 24 {
                saw_big = true;
            }
        }
        assert!(saw_big, "heavy-tail fanout never sampled large");
        assert_eq!(FanoutDist::Fixed(3).sample(&mut rng), 3);
    }

    #[test]
    fn fanout_sampler_is_bit_identical_to_dist() {
        // The precomputed sampler must reproduce FanoutDist::sample
        // exactly — same draws from the same rng state — or the
        // golden-digest determinism contract breaks.
        let dists = [
            FanoutDist::Fixed(1),
            FanoutDist::Fixed(7),
            FanoutDist::Fixed(0), // floored to 1
            FanoutDist::Pareto {
                max: 48,
                alpha: 0.8,
            },
            FanoutDist::Pareto { max: 8, alpha: 1.3 },
            FanoutDist::Pareto {
                max: 64,
                alpha: 1.05,
            },
        ];
        for (i, d) in dists.into_iter().enumerate() {
            let s = FanoutSampler::from_dist(d);
            let mut rng_a = Prng::seed_from(100 + i as u64);
            let mut rng_b = Prng::seed_from(100 + i as u64);
            for _ in 0..20_000 {
                assert_eq!(d.sample(&mut rng_a), s.sample(&mut rng_b), "{d:?}");
            }
            // The streams consumed identically.
            assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "{d:?}");
        }
    }

    #[test]
    fn hot_headers_mirror_the_cold_specs() {
        let c = catalog(500);
        for m in c.methods() {
            let h = c.hot(m.id);
            assert_eq!(h.service, m.service);
            assert_eq!(h.fast_path_prob, m.fast_path_prob);
            assert_eq!(h.hedge, m.hedge);
            // The samplers are the same distributions: equal medians.
            assert_eq!(h.compute.median(), m.compute.median());
            assert_eq!(h.req_size.median(), m.req_size.median());
            assert_eq!(h.resp_size.median(), m.resp_size.median());
            assert_eq!(h.cpu_work.median(), m.cpu_work.median());
        }
        for s in c.services() {
            let h = c.service_hot(s.id);
            assert_eq!(h.compressed, s.compressed);
            assert_eq!(h.reserved_cores, s.reserved_cores);
            assert_eq!(h.remote_call_prob, s.remote_call_prob);
            assert_eq!(h.data_miss_prob, s.data_miss_prob);
            assert_eq!(h.class.compressed, s.compressed);
            assert_eq!(h.class.encrypted, s.encrypted);
            assert_eq!(h.class.blob, s.blob_payload);
        }
        // Every edge-table slice is consistent: concatenating the
        // per-method slices walks the whole table exactly once.
        let total: usize = c.methods().iter().map(|m| c.edges(m.id).len()).sum();
        assert!(total > 0, "catalog has no edges at all");
        let mut rng = Prng::seed_from(3);
        for m in c.methods().iter().take(100) {
            for e in c.edges(m.id) {
                assert!((e.prob > 0.0) && (e.prob <= 1.0));
                assert!(e.fanout.sample(&mut rng) >= 1);
            }
        }
    }

    #[test]
    fn deployments_use_plausible_cluster_counts() {
        // The paper's Fig. 16 spans 5-44 clusters per service.
        let c = catalog(600);
        for s in c.services() {
            assert!(
                (1..=48).contains(&s.clusters.len()),
                "{} on {} clusters",
                s.name,
                s.clusters.len()
            );
        }
        let ml = c.service_by_name("MLInference").unwrap();
        assert!(ml.clusters.len() >= 40, "ML runs on many clusters");
        let kv = c.service_by_name("KVStore").unwrap();
        assert!(kv.clusters.len() <= 8, "KV-Store runs on few clusters");
    }

    #[test]
    #[should_panic(expected = "at least 300")]
    fn tiny_catalog_panics() {
        let _ = catalog(100);
    }
}
