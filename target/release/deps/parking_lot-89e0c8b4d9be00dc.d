/root/repo/target/release/deps/parking_lot-89e0c8b4d9be00dc.d: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/parking_lot-89e0c8b4d9be00dc: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
