/root/repo/target/debug/deps/end_to_end-c9f63a60e783834a.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-c9f63a60e783834a: tests/end_to_end.rs

tests/end_to_end.rs:
