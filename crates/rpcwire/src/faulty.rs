//! Seeded fault injection for transports.
//!
//! [`FaultyTransport`] wraps any [`Transport`] and perturbs the send path
//! with a deterministic, seeded schedule — the same discipline as
//! `fleet::faults`: all randomness flows from one [`Prng`], so a given
//! `(seed, config)` pair always produces the identical drop/duplicate/
//! reorder/corrupt sequence, and the invocation-semantics tests assert
//! exact outcomes instead of probabilistic ones.
//!
//! Faults are applied on *send* (the sender's NIC eats, copies, delays,
//! or mangles the datagram). Wrapping the client injects request-path
//! faults; wrapping the server's reply link injects response-path faults
//! — the case that separates at-most-once from at-least-once semantics,
//! because the server has already executed when the reply is lost.

use crate::transport::Transport;
use rpclens_simcore::rng::Prng;
use std::io;
use std::time::Duration;

/// Per-datagram fault probabilities. Draws happen in a fixed order
/// (drop, then duplicate, then reorder, then corrupt) so schedules are
/// reproducible across refactors of the wrapped transport.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Probability a sent datagram is silently dropped.
    pub drop_prob: f64,
    /// Probability a sent datagram is delivered twice.
    pub duplicate_prob: f64,
    /// Probability a sent datagram is held back and delivered after the
    /// next send (pairwise reordering).
    pub reorder_prob: f64,
    /// Probability one bit of the datagram is flipped in flight.
    pub corrupt_prob: f64,
}

impl FaultConfig {
    /// No faults at all; the wrapper becomes a pass-through.
    pub fn none() -> FaultConfig {
        FaultConfig {
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            reorder_prob: 0.0,
            corrupt_prob: 0.0,
        }
    }

    /// A lossy-but-usable link: the default chaos schedule the semantics
    /// tests run under.
    pub fn lossy() -> FaultConfig {
        FaultConfig {
            drop_prob: 0.25,
            duplicate_prob: 0.15,
            reorder_prob: 0.10,
            corrupt_prob: 0.05,
        }
    }
}

/// Counters of what the fault plane actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Datagrams handed to `send`.
    pub sent: u64,
    /// Datagrams silently dropped.
    pub dropped: u64,
    /// Extra copies delivered.
    pub duplicated: u64,
    /// Datagrams delivered out of order.
    pub reordered: u64,
    /// Datagrams with a bit flipped.
    pub corrupted: u64,
}

/// A [`Transport`] wrapper that injects seeded faults on the send path.
#[derive(Debug)]
pub struct FaultyTransport<T: Transport> {
    inner: T,
    config: FaultConfig,
    rng: Prng,
    /// A datagram held back for reordering, delivered after the next
    /// send (or flushed by [`FaultyTransport::flush_held`]).
    held: Option<Vec<u8>>,
    stats: FaultStats,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner` with a seeded fault schedule.
    pub fn new(inner: T, config: FaultConfig, seed: u64) -> FaultyTransport<T> {
        FaultyTransport {
            inner,
            config,
            rng: Prng::seed_from(seed).stream(0xFA_017),
            held: None,
            stats: FaultStats::default(),
        }
    }

    /// What the fault plane has done so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// The wrapped transport.
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    /// Delivers a datagram held for reordering, if any. Without this a
    /// held datagram only goes out after the *next* send — which is the
    /// point of reordering, but tests may want a clean flush at the end.
    pub fn flush_held(&mut self) -> io::Result<()> {
        if let Some(held) = self.held.take() {
            self.inner.send(&held)?;
        }
        Ok(())
    }

    fn deliver(&mut self, datagram: &[u8]) -> io::Result<()> {
        self.inner.send(datagram)?;
        if let Some(held) = self.held.take() {
            self.stats.reordered += 1;
            self.inner.send(&held)?;
        }
        Ok(())
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn send(&mut self, datagram: &[u8]) -> io::Result<()> {
        self.stats.sent += 1;
        // Fixed draw order keeps schedules stable: consume all four
        // decisions for every datagram regardless of earlier outcomes.
        let drop_it = self.rng.chance(self.config.drop_prob);
        let duplicate = self.rng.chance(self.config.duplicate_prob);
        let reorder = self.rng.chance(self.config.reorder_prob);
        let corrupt = self.rng.chance(self.config.corrupt_prob);
        if drop_it {
            self.stats.dropped += 1;
            return Ok(());
        }
        let mut datagram = datagram.to_vec();
        if corrupt && !datagram.is_empty() {
            self.stats.corrupted += 1;
            let at = self.rng.index(datagram.len());
            let bit = self.rng.index(8) as u8;
            datagram[at] ^= 1 << bit;
        }
        if reorder && self.held.is_none() {
            // Hold this one back; it rides behind the next datagram.
            self.held = Some(datagram);
            return Ok(());
        }
        if duplicate {
            self.stats.duplicated += 1;
            self.deliver(&datagram)?;
        }
        self.deliver(&datagram)
    }

    fn recv(&mut self, buf: &mut [u8], timeout: Duration) -> io::Result<Option<usize>> {
        self.inner.recv(buf, timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::MemLink;

    fn drain(link: &mut MemLink) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        let mut buf = [0u8; 256];
        while let Some(n) = link.recv(&mut buf, Duration::ZERO).unwrap() {
            out.push(buf[..n].to_vec());
        }
        out
    }

    #[test]
    fn passthrough_when_no_faults() {
        let (a, mut b) = MemLink::pair();
        let mut faulty = FaultyTransport::new(a, FaultConfig::none(), 1);
        for i in 0..20u8 {
            faulty.send(&[i]).unwrap();
        }
        let got = drain(&mut b);
        assert_eq!(got.len(), 20);
        for (i, d) in got.iter().enumerate() {
            assert_eq!(d, &vec![i as u8]);
        }
        assert_eq!(
            faulty.stats(),
            FaultStats {
                sent: 20,
                ..FaultStats::default()
            }
        );
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = |seed: u64| {
            let (a, mut b) = MemLink::pair();
            let mut faulty = FaultyTransport::new(a, FaultConfig::lossy(), seed);
            for i in 0..200u8 {
                faulty.send(&[i, i.wrapping_mul(3)]).unwrap();
            }
            faulty.flush_held().unwrap();
            (faulty.stats(), drain(&mut b))
        };
        let (stats_a, datagrams_a) = run(42);
        let (stats_b, datagrams_b) = run(42);
        assert_eq!(stats_a, stats_b);
        assert_eq!(datagrams_a, datagrams_b);
        // A different seed produces a different schedule.
        let (stats_c, datagrams_c) = run(43);
        assert!(stats_c != stats_a || datagrams_c != datagrams_a);
    }

    #[test]
    fn drops_lose_and_duplicates_multiply() {
        let (a, mut b) = MemLink::pair();
        let mut faulty = FaultyTransport::new(
            a,
            FaultConfig {
                drop_prob: 0.5,
                duplicate_prob: 0.5,
                reorder_prob: 0.0,
                corrupt_prob: 0.0,
            },
            7,
        );
        let n = 400;
        for i in 0..n {
            faulty.send(&[(i % 251) as u8]).unwrap();
        }
        let delivered = drain(&mut b).len() as u64;
        let stats = faulty.stats();
        assert_eq!(stats.sent, n);
        assert!(stats.dropped > 0 && stats.duplicated > 0);
        assert_eq!(delivered, n - stats.dropped + stats.duplicated);
    }

    #[test]
    fn reorder_swaps_adjacent_datagrams() {
        let (a, mut b) = MemLink::pair();
        let mut faulty = FaultyTransport::new(
            a,
            FaultConfig {
                drop_prob: 0.0,
                duplicate_prob: 0.0,
                reorder_prob: 0.4,
                corrupt_prob: 0.0,
            },
            11,
        );
        let n = 100u8;
        for i in 0..n {
            faulty.send(&[i]).unwrap();
        }
        faulty.flush_held().unwrap();
        let got = drain(&mut b);
        assert_eq!(got.len(), n as usize, "reordering must not lose data");
        let order: Vec<u8> = got.iter().map(|d| d[0]).collect();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n).collect::<Vec<_>>());
        assert_ne!(order, sorted, "seed 11 must actually reorder something");
        assert!(faulty.stats().reordered > 0);
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let (a, mut b) = MemLink::pair();
        let mut faulty = FaultyTransport::new(
            a,
            FaultConfig {
                drop_prob: 0.0,
                duplicate_prob: 0.0,
                reorder_prob: 0.0,
                corrupt_prob: 1.0,
            },
            13,
        );
        let original = [0u8; 32];
        faulty.send(&original).unwrap();
        let got = drain(&mut b);
        assert_eq!(got.len(), 1);
        let flipped_bits: u32 = got[0].iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped_bits, 1, "exactly one bit flipped");
    }
}
