/root/repo/target/debug/examples/quickstart-e87f06d6a43cc800.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e87f06d6a43cc800: examples/quickstart.rs

examples/quickstart.rs:
