/root/repo/target/debug/examples/critical_paths-0e6d662f12c6dbc2.d: examples/critical_paths.rs Cargo.toml

/root/repo/target/debug/examples/libcritical_paths-0e6d662f12c6dbc2.rmeta: examples/critical_paths.rs Cargo.toml

examples/critical_paths.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
