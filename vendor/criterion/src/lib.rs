//! Offline stand-in for the `criterion` crate.
//!
//! Implements the slice of the criterion API the rpclens benches use —
//! `Criterion::benchmark_group`, `bench_function`/`bench_with_input`,
//! `Bencher::iter`, `black_box`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!`/`criterion_main!` macros — as a small harness that
//! really measures wall-clock time and prints one line per benchmark.
//!
//! No statistics beyond the mean, no HTML reports, no outlier analysis:
//! the goal is that `cargo bench` works and produces honest relative
//! numbers in a network-isolated build environment.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Every result reported in this process, across all groups. The
/// `criterion_group!` macro builds one `Criterion` per group function, so
/// a process-wide registry is the only place a `--bench-json` report can
/// see everything.
static ALL_RESULTS: Mutex<Vec<(String, u128)>> = Mutex::new(Vec::new());

/// Renders every benchmark result recorded in this process as a JSON
/// array of `{"name": ..., "mean_ns": ...}` objects.
pub fn json_report() -> String {
    let results = ALL_RESULTS.lock().expect("results lock");
    let mut out = String::from("[\n");
    for (i, (name, ns)) in results.iter().enumerate() {
        let escaped: String = name
            .chars()
            .flat_map(|c| match c {
                '"' | '\\' => vec!['\\', c],
                c if c.is_control() => format!("\\u{:04x}", c as u32).chars().collect(),
                c => vec![c],
            })
            .collect();
        out.push_str(&format!("  {{\"name\": \"{escaped}\", \"mean_ns\": {ns}}}"));
        if i + 1 < results.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Writes the JSON report when `--bench-json PATH` (or
/// `--bench-json=PATH`) appears among the process arguments — invoke as
/// `cargo bench --bench fleet_bench -- --bench-json out.json`. Called
/// automatically at the end of `criterion_main!`.
pub fn flush_json_if_requested() {
    let mut args = std::env::args();
    let mut path: Option<String> = None;
    while let Some(arg) = args.next() {
        if arg == "--bench-json" {
            path = args.next();
        } else if let Some(p) = arg.strip_prefix("--bench-json=") {
            path = Some(p.to_string());
        }
    }
    if let Some(path) = path {
        std::fs::write(&path, json_report())
            .unwrap_or_else(|e| panic!("write bench JSON {path}: {e}"));
        eprintln!("wrote benchmark JSON to {path}");
    }
}

/// Re-sampled wall-clock time target per benchmark.
const TARGET_MEASURE: Duration = Duration::from_millis(400);
/// Warm-up time target per benchmark.
const TARGET_WARMUP: Duration = Duration::from_millis(100);

/// Opaque value barrier; prevents the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units of work per iteration, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher {
    /// Mean wall-clock duration of one iteration, filled in by `iter`.
    measured: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, first warming up, then measuring enough
    /// iterations to fill the measurement window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also calibrates how many iterations fit the window.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < TARGET_WARMUP {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let iters = ((TARGET_MEASURE.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);

        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.measured = Some(start.elapsed() / iters as u32);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count (accepted for API
    /// compatibility; this harness sizes runs by wall-clock time).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement window (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Declares the work per iteration for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { measured: None };
        f(&mut b);
        self.report(&id, b.measured);
        self
    }

    /// Runs one benchmark that takes an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher { measured: None };
        f(&mut b, input);
        self.report(&id, b.measured);
        self
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(&mut self) {}

    fn report(&mut self, id: &BenchmarkId, measured: Option<Duration>) {
        let full = format!("{}/{}", self.name, id.id);
        match measured {
            Some(d) => {
                let mut line = format!("{full:<56} {:>12}", format_duration(d));
                if let Some(tp) = self.throughput {
                    let secs = d.as_secs_f64().max(1e-12);
                    match tp {
                        Throughput::Bytes(n) => {
                            let gib = n as f64 / secs / (1u64 << 30) as f64;
                            line.push_str(&format!("  {gib:>9.3} GiB/s"));
                        }
                        Throughput::Elements(n) => {
                            let me = n as f64 / secs / 1e6;
                            line.push_str(&format!("  {me:>9.3} Melem/s"));
                        }
                    }
                }
                println!("{line}");
                ALL_RESULTS
                    .lock()
                    .expect("results lock")
                    .push((full.clone(), d.as_nanos()));
                self.criterion.results.push((full, d));
            }
            None => println!("{full:<56} {:>12}", "no measurement"),
        }
    }
}

/// Benchmark driver; owns results for the process lifetime.
#[derive(Default)]
pub struct Criterion {
    results: Vec<(String, Duration)>,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n-- {name} --");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }

    /// Per-benchmark mean durations recorded so far.
    pub fn results(&self) -> &[(String, Duration)] {
        &self.results
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a benchmark group function from a list of bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from a list of benchmark groups. After all groups
/// run, honors a `--bench-json PATH` argument with a machine-readable
/// report of every result.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::flush_json_if_requested();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| {
            b.iter(|| (0..100u64).map(black_box).sum::<u64>())
        });
        g.finish();
        assert_eq!(c.results().len(), 1);
        assert!(c.results()[0].1 > Duration::ZERO);
    }

    #[test]
    fn json_report_includes_recorded_results() {
        let mut c = Criterion::default();
        c.benchmark_group("jsongroup")
            .bench_function("escaped\"name", |b| b.iter(|| black_box(1u64) + 1));
        let json = json_report();
        assert!(json.starts_with("[\n") && json.ends_with("]\n"), "{json}");
        assert!(
            json.contains(r#""name": "jsongroup/escaped\"name""#),
            "{json}"
        );
        assert!(json.contains("\"mean_ns\": "), "{json}");
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("f", 4);
        assert_eq!(id.id, "f/4");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
