/root/repo/target/debug/deps/substrate_interop-08f7386609766589.d: tests/substrate_interop.rs

/root/repo/target/debug/deps/substrate_interop-08f7386609766589: tests/substrate_interop.rs

tests/substrate_interop.rs:
