//! The correlated incident plane: shared cross-entity failure events.
//!
//! The per-entity fault plane (`crate::faults`) draws *independent*
//! episodes — one machine crashes, one cluster drains, one pair browns
//! out — which gives detectors narrow blast radii. Real incidents are
//! correlated: a cluster drain displaces its traffic onto placement
//! neighbours, one WAN cut severs every cluster pair spanning two
//! regions, and an overload front sweeps a whole region at once. The
//! [`IncidentPlane`] draws those *shared* incidents from seeded episode
//! processes keyed by the incident's scope (cluster, region pair, or
//! region) and materialises them as deterministic per-entity answers the
//! driver composes with [`crate::faults::FaultPlane`] queries.
//!
//! Precedence when both planes speak (tested in `composition` below and
//! exercised end-to-end by the driver):
//!
//! - **Reachability**: a blackout from either plane wins over any
//!   brownout; when both planes brown the same path out, the larger
//!   excess applies.
//! - **Drains**: a cluster is drained when either plane drains it.
//! - **Overload**: surge sources never stack multiplicatively — the
//!   *strongest* factor among the per-site surge, the regional front,
//!   and the neighbour surge applies (each is already an absolute
//!   utilization multiplier, so stacking would double-count the load).
//!
//! The same determinism contract as the fault plane holds: eligibility
//! gates and trajectories derive from `(master seed, scope key)` via
//! labelled streams, never consume caller draws, and are independent of
//! query order — so every shard reconstructs identical incident
//! timelines and `--faults none` runs draw nothing at all.

use crate::faults::{lazy_episode, EpisodeSpec, OverloadSpec, PartitionSpec, PartitionState};
use rpclens_cluster::faults::EpisodeProcess;
use rpclens_simcore::time::{SimDuration, SimTime};
use std::collections::{BTreeSet, HashMap};

/// Generator domains for the incident plane, disjoint from the fault
/// plane's `0xFA17_xxxx` family (and every other consumer of the master
/// seed). The shared gate label is XORed with each domain, mirroring
/// `crate::faults`.
const INCIDENT_DRAIN_LABEL: u64 = 0x1AC1_0001;
const INCIDENT_CUT_LABEL: u64 = 0x1AC1_0002;
const INCIDENT_FRONT_LABEL: u64 = 0x1AC1_0003;

/// Shared cross-entity incident sources. Scopes are structural — the
/// cluster's region membership decides who a drain displaces load onto
/// and which cluster pairs one WAN cut severs — so a single episode draw
/// fans out over many entities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IncidentSpec {
    /// Whole-cluster drain incidents. While a cluster drains, its
    /// same-region placement neighbours absorb the displaced traffic as
    /// a utilization surge.
    pub drain: Option<EpisodeSpec>,
    /// Utilization multiplier on the same-region neighbours of a
    /// draining cluster (the displaced load landing on them).
    pub surge_factor: f64,
    /// Region-pair WAN cuts: one episode degrades *every* cluster pair
    /// spanning the two regions at once. Episodes alternate
    /// blackout/brownout on their ordinal, like per-pair partitions.
    pub wan_cut: Option<PartitionSpec>,
    /// Regional overload fronts: one episode surges every deployment
    /// site in the region, with load shedding past the spec's wait
    /// threshold.
    pub front: Option<OverloadSpec>,
}

impl IncidentSpec {
    /// Whether any incident source is active.
    pub fn strikes(&self) -> bool {
        self.drain.is_some() || self.wan_cut.is_some() || self.front.is_some()
    }
}

/// Boundary-sampled activity of one incident kind over a run, reported
/// in the manifest's robustness section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncidentSummaryRow {
    /// Incident kind (`cluster-drain`, `wan-cut`, `overload-front`).
    pub kind: &'static str,
    /// Scope entities (clusters, region pairs, or regions) struck by at
    /// least one episode observed at a window boundary.
    pub entities_struck: u64,
    /// Distinct episodes observed across all entities at window
    /// boundaries (episodes shorter than a window can slip between
    /// samples).
    pub episodes: u64,
}

/// The per-shard materialisation of an [`IncidentSpec`].
///
/// Built from the master seed plus the topology's cluster→region map;
/// every query is a pure function of `(seed, scope key, now)`, so two
/// planes over the same spec answer identically regardless of query
/// order — the property `plane_answers_are_independent_of_query_order`
/// pins for the fault plane and `incident_answers_are_order_independent`
/// pins here.
#[derive(Debug)]
pub struct IncidentPlane {
    spec: IncidentSpec,
    seed: u64,
    /// Region of each cluster, indexed by cluster id.
    region_of: Vec<u16>,
    /// Clusters of each region (ascending), indexed by region id.
    members: Vec<Vec<u16>>,
    drain: HashMap<u16, Option<EpisodeProcess>>,
    cut: HashMap<u32, Option<EpisodeProcess>>,
    front: HashMap<u16, Option<EpisodeProcess>>,
}

impl IncidentPlane {
    /// Materialises a spec against the master seed and the cluster→region
    /// map (`region_of[c]` is the region of cluster `c`). Returns `None`
    /// when no incident source is active, so the driver's hot path gates
    /// on plane presence alone.
    pub fn new(spec: &IncidentSpec, seed: u64, region_of: Vec<u16>) -> Option<Self> {
        spec.strikes().then(|| {
            let regions = region_of
                .iter()
                .copied()
                .max()
                .map_or(0, |r| r as usize + 1);
            let mut members = vec![Vec::new(); regions];
            for (cluster, &region) in region_of.iter().enumerate() {
                members[region as usize].push(cluster as u16);
            }
            IncidentPlane {
                spec: *spec,
                seed,
                region_of,
                members,
                drain: HashMap::new(),
                cut: HashMap::new(),
                front: HashMap::new(),
            }
        })
    }

    /// The spec this plane materialises.
    pub fn spec(&self) -> &IncidentSpec {
        &self.spec
    }

    /// Whether `cluster` is inside a drain incident at `now`.
    pub fn cluster_drained(&mut self, cluster: u16, now: SimTime) -> bool {
        let Some(spec) = self.spec.drain else {
            return false;
        };
        match lazy_episode(
            &mut self.drain,
            cluster,
            cluster as u64,
            INCIDENT_DRAIN_LABEL,
            self.seed,
            &spec,
        ) {
            Some(p) => p.active_at(now),
            None => false,
        }
    }

    /// Connectivity of the cluster pair `a`–`b` at `now` under region-pair
    /// WAN cuts. `wan` is the caller-computed path classification;
    /// non-WAN and same-region pairs never cut. Episodes alternate
    /// blackout/brownout on their ordinal.
    pub fn partition_state(&mut self, a: u16, b: u16, wan: bool, now: SimTime) -> PartitionState {
        let Some(spec) = self.spec.wan_cut else {
            return PartitionState::Connected;
        };
        let (ra, rb) = match (
            self.region_of.get(a as usize),
            self.region_of.get(b as usize),
        ) {
            (Some(&ra), Some(&rb)) => (ra, rb),
            _ => return PartitionState::Connected,
        };
        if !wan || ra == rb {
            return PartitionState::Connected;
        }
        let (lo, hi) = if ra <= rb { (ra, rb) } else { (rb, ra) };
        let key = ((lo as u32) << 16) | hi as u32;
        match lazy_episode(
            &mut self.cut,
            key,
            key as u64,
            INCIDENT_CUT_LABEL,
            self.seed,
            &spec.episodes,
        ) {
            Some(p) => match p.active_episode(now) {
                Some(episode) if episode % 2 == 0 => PartitionState::Blackout,
                Some(_) => PartitionState::Brownout,
                None => PartitionState::Connected,
            },
            None => PartitionState::Connected,
        }
    }

    /// Excess one-way latency a region-pair brownout adds per crossing.
    pub fn brownout_excess(&self) -> SimDuration {
        self.spec
            .wan_cut
            .map_or(SimDuration::ZERO, |s| s.brownout_excess)
    }

    /// The utilization surge multiplier on `cluster` at `now`, or `None`
    /// outside any incident: the strongest of the regional overload front
    /// and the neighbour surge from a same-region cluster drain (sources
    /// do not stack — see the module-level precedence rules).
    pub fn overload_factor(&mut self, cluster: u16, now: SimTime) -> Option<f64> {
        let mut factor: Option<f64> = None;
        if let Some(front) = self.spec.front {
            if let Some(&region) = self.region_of.get(cluster as usize) {
                let active = match lazy_episode(
                    &mut self.front,
                    region,
                    region as u64,
                    INCIDENT_FRONT_LABEL,
                    self.seed,
                    &front.episodes,
                ) {
                    Some(p) => p.active_at(now),
                    None => false,
                };
                if active {
                    factor = Some(front.util_factor);
                }
            }
        }
        if self.spec.drain.is_some() && self.neighbour_draining(cluster, now) {
            let surge = self.spec.surge_factor;
            factor = Some(factor.map_or(surge, |f| f.max(surge)));
        }
        factor
    }

    /// The shed-wait threshold of the regional front, if one is
    /// configured (neighbour surges shed at the same threshold).
    pub fn shed_wait(&self) -> Option<SimDuration> {
        self.spec.front.map(|f| f.shed_wait)
    }

    /// Whether any *other* cluster in `cluster`'s region is draining at
    /// `now` (its displaced load is what surges this cluster).
    fn neighbour_draining(&mut self, cluster: u16, now: SimTime) -> bool {
        let Some(&region) = self.region_of.get(cluster as usize) else {
            return false;
        };
        // The member list is tiny (clusters per region), cloned to avoid
        // aliasing the lazily-built process map during the scan.
        let peers = self.members[region as usize].clone();
        peers
            .into_iter()
            .filter(|&peer| peer != cluster)
            .any(|peer| self.cluster_drained(peer, now))
    }

    /// Boundary-sampled incident activity over `[0, duration)`: one row
    /// per configured incident kind, sampled at every `window` boundary.
    /// Episode counts are lower bounds — episodes shorter than a window
    /// can fall between samples.
    pub fn summary(
        &mut self,
        duration: SimDuration,
        window: SimDuration,
    ) -> Vec<IncidentSummaryRow> {
        let boundaries: Vec<SimTime> = (0..=duration.as_nanos() / window.as_nanos().max(1))
            .map(|w| SimTime::from_nanos(w * window.as_nanos()))
            .collect();
        let n_clusters = self.region_of.len() as u16;
        let n_regions = self.members.len() as u16;
        let mut rows = Vec::new();
        if self.spec.drain.is_some() {
            let mut struck = 0u64;
            let mut episodes = 0u64;
            for c in 0..n_clusters {
                let mut seen = BTreeSet::new();
                for &t in &boundaries {
                    if self.cluster_drained(c, t) {
                        if let Some(p) = self.drain.get_mut(&c).and_then(|p| p.as_mut()) {
                            if let Some(e) = p.active_episode(t) {
                                seen.insert(e);
                            }
                        }
                    }
                }
                struck += u64::from(!seen.is_empty());
                episodes += seen.len() as u64;
            }
            rows.push(IncidentSummaryRow {
                kind: "cluster-drain",
                entities_struck: struck,
                episodes,
            });
        }
        if self.spec.wan_cut.is_some() {
            let mut struck = 0u64;
            let mut episodes = 0u64;
            for ra in 0..n_regions {
                for rb in ra + 1..n_regions {
                    // Representative clusters of each region; the cut is
                    // keyed per region pair, so any member pair sees it.
                    let (Some(&a), Some(&b)) = (
                        self.members[ra as usize].first(),
                        self.members[rb as usize].first(),
                    ) else {
                        continue;
                    };
                    let mut seen = BTreeSet::new();
                    for &t in &boundaries {
                        if self.partition_state(a, b, true, t) != PartitionState::Connected {
                            let key = ((ra as u32) << 16) | rb as u32;
                            if let Some(p) = self.cut.get_mut(&key).and_then(|p| p.as_mut()) {
                                if let Some(e) = p.active_episode(t) {
                                    seen.insert(e);
                                }
                            }
                        }
                    }
                    struck += u64::from(!seen.is_empty());
                    episodes += seen.len() as u64;
                }
            }
            rows.push(IncidentSummaryRow {
                kind: "wan-cut",
                entities_struck: struck,
                episodes,
            });
        }
        if self.spec.front.is_some() {
            let mut struck = 0u64;
            let mut episodes = 0u64;
            for r in 0..n_regions {
                let Some(&c) = self.members[r as usize].first() else {
                    continue;
                };
                let mut seen = BTreeSet::new();
                for &t in &boundaries {
                    // Query through the public surface so lazy gating
                    // matches the driver's; then read the ordinal.
                    let _ = self.overload_factor(c, t);
                    if let Some(p) = self.front.get_mut(&r).and_then(|p| p.as_mut()) {
                        if let Some(e) = p.active_episode(t) {
                            seen.insert(e);
                        }
                    }
                }
                struck += u64::from(!seen.is_empty());
                episodes += seen.len() as u64;
            }
            rows.push(IncidentSummaryRow {
                kind: "overload-front",
                entities_struck: struck,
                episodes,
            });
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultScenario;
    use rpclens_cluster::faults::EpisodeParams;

    /// Two regions of three clusters each.
    fn region_map() -> Vec<u16> {
        vec![0, 0, 0, 1, 1, 1]
    }

    fn spec() -> IncidentSpec {
        IncidentSpec {
            drain: Some(EpisodeSpec {
                eligible: 1.0,
                params: EpisodeParams {
                    up_mean: SimDuration::from_hours(4),
                    down_mean: SimDuration::from_secs(2_400),
                },
            }),
            surge_factor: 1.8,
            wan_cut: Some(PartitionSpec {
                episodes: EpisodeSpec {
                    eligible: 1.0,
                    params: EpisodeParams {
                        up_mean: SimDuration::from_hours(5),
                        down_mean: SimDuration::from_secs(1_800),
                    },
                },
                brownout_excess: SimDuration::from_millis(25),
            }),
            front: Some(OverloadSpec {
                episodes: EpisodeSpec {
                    eligible: 1.0,
                    params: EpisodeParams {
                        up_mean: SimDuration::from_hours(5),
                        down_mean: SimDuration::from_hours(2),
                    },
                },
                util_factor: 2.0,
                shed_wait: SimDuration::from_millis(15),
            }),
        }
    }

    fn instants() -> Vec<SimTime> {
        (0..2_000u64)
            .map(|i| SimTime::from_nanos(i * 43_000_000_000))
            .collect()
    }

    #[test]
    fn empty_spec_yields_no_plane() {
        let none = IncidentSpec {
            drain: None,
            surge_factor: 1.0,
            wan_cut: None,
            front: None,
        };
        assert!(!none.strikes());
        assert!(IncidentPlane::new(&none, 7, region_map()).is_none());
    }

    #[test]
    fn drains_surge_same_region_neighbours() {
        let spec = spec();
        let mut plane = IncidentPlane::new(&spec, 7, region_map()).unwrap();
        let mut surged_neighbour = false;
        for t in instants() {
            for c in 0..6u16 {
                if plane.cluster_drained(c, t) {
                    let region = region_map()[c as usize];
                    for peer in 0..6u16 {
                        if peer == c || region_map()[peer as usize] != region {
                            continue;
                        }
                        let f = plane.overload_factor(peer, t);
                        assert!(
                            f.is_some_and(|f| f >= spec.surge_factor),
                            "neighbour {peer} of draining {c} not surged at {t}: {f:?}"
                        );
                        surged_neighbour = true;
                    }
                }
            }
        }
        assert!(surged_neighbour, "no drain incident observed at all");
    }

    #[test]
    fn wan_cuts_strike_every_pair_across_the_region_pair() {
        let mut plane = IncidentPlane::new(&spec(), 7, region_map()).unwrap();
        let mut cut_seen = false;
        for t in instants() {
            // The region-pair key means every cluster pair spanning the
            // two regions reports the *same* state at the same instant.
            let states: Vec<PartitionState> = [(0u16, 3u16), (1, 4), (2, 5), (0, 5), (2, 3)]
                .iter()
                .map(|&(a, b)| plane.partition_state(a, b, true, t))
                .collect();
            assert!(
                states.windows(2).all(|w| w[0] == w[1]),
                "pairs disagree at {t}: {states:?}"
            );
            cut_seen |= states[0] != PartitionState::Connected;
        }
        assert!(cut_seen, "no wan cut observed");
    }

    #[test]
    fn same_region_and_non_wan_pairs_never_cut() {
        let mut plane = IncidentPlane::new(&spec(), 7, region_map()).unwrap();
        for t in instants() {
            assert_eq!(
                plane.partition_state(0, 1, true, t),
                PartitionState::Connected
            );
            assert_eq!(
                plane.partition_state(0, 3, false, t),
                PartitionState::Connected
            );
        }
    }

    #[test]
    fn fronts_sweep_whole_regions() {
        let spec = spec();
        let mut plane = IncidentPlane::new(&spec, 7, region_map()).unwrap();
        let mut front_seen = false;
        for t in instants() {
            for region in 0..2u16 {
                let members: Vec<u16> = region_map()
                    .iter()
                    .enumerate()
                    .filter(|(_, &r)| r == region)
                    .map(|(c, _)| c as u16)
                    .collect();
                let factors: Vec<Option<f64>> = members
                    .iter()
                    .map(|&c| plane.overload_factor(c, t))
                    .collect();
                // When the front is up, every member is at least at the
                // front's factor (a concurrent neighbour drain may push
                // an individual member higher, never lower).
                let front_up = factors.iter().any(|f| {
                    f.is_some_and(|f| (f - spec.front.unwrap().util_factor).abs() < 1e-12)
                });
                if front_up {
                    front_seen = true;
                }
            }
        }
        assert!(front_seen, "no overload front observed");
    }

    #[test]
    fn incident_answers_are_order_independent() {
        let spec = spec();
        let mut forward = IncidentPlane::new(&spec, 7, region_map()).unwrap();
        let mut backward = IncidentPlane::new(&spec, 7, region_map()).unwrap();
        let instants = instants();
        let mut recorded = Vec::new();
        for &t in &instants {
            for c in 0..6u16 {
                recorded.push((
                    forward.cluster_drained(c, t),
                    forward.partition_state(c, 5 - c, true, t),
                    forward.overload_factor(c, t),
                ));
            }
        }
        let mut idx = recorded.len();
        for &t in instants.iter().rev() {
            for c in (0..6u16).rev() {
                idx -= 1;
                let expect = recorded[idx];
                assert_eq!(backward.overload_factor(c, t), expect.2, "overload at {t}");
                assert_eq!(
                    backward.partition_state(5 - c, c, true, t),
                    expect.1,
                    "cut at {t} (reversed pair)"
                );
                assert_eq!(backward.cluster_drained(c, t), expect.0, "drain at {t}");
            }
        }
    }

    #[test]
    fn composition_precedence_with_the_fault_plane() {
        // The driver composes the two planes with max-wins overload and
        // blackout-beats-brownout reachability; verify the building
        // blocks give the composed answer the documented precedence.
        let spec = spec();
        let mut plane = IncidentPlane::new(&spec, 7, region_map()).unwrap();
        let scenario = FaultScenario::chaos_smoke();
        let mut faults = crate::faults::FaultPlane::new(&scenario, 7).unwrap();
        for t in instants() {
            for c in 0..6u16 {
                let fault_f = faults.overload_factor(0, c, t);
                let incident_f = plane.overload_factor(c, t);
                let composed = match (fault_f, incident_f) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    (a, b) => a.or(b),
                };
                // Strongest-source-wins: the composed factor equals at
                // least each contributing factor and never their product.
                if let (Some(cf), Some(a), Some(b)) = (composed, fault_f, incident_f) {
                    assert!(cf >= a && cf >= b && cf < a * b);
                }
            }
        }
    }

    #[test]
    fn summary_reports_struck_entities_and_episodes() {
        let mut plane = IncidentPlane::new(&spec(), 7, region_map()).unwrap();
        let rows = plane.summary(SimDuration::from_hours(24), SimDuration::from_secs(1_800));
        assert_eq!(rows.len(), 3);
        let drain = rows.iter().find(|r| r.kind == "cluster-drain").unwrap();
        let cut = rows.iter().find(|r| r.kind == "wan-cut").unwrap();
        let front = rows.iter().find(|r| r.kind == "overload-front").unwrap();
        assert!(drain.entities_struck > 0 && drain.episodes >= drain.entities_struck);
        // Two regions: exactly one region pair can be struck.
        assert!(cut.entities_struck <= 1);
        assert!(front.entities_struck <= 2);
        assert!(
            cut.episodes + front.episodes > 0,
            "no shared incidents at all"
        );
    }
}
