//! A time-ordered, FIFO-stable discrete-event queue.
//!
//! The queue is generic over the event payload so each simulation layer can
//! define its own event enum while sharing the same deterministic executor
//! semantics: events fire in non-decreasing time order, and events scheduled
//! for the same instant fire in the order they were scheduled.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event payload together with its scheduled firing time and a sequence
/// number that breaks ties deterministically.
#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (time, seq) pops
        // first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// # Examples
///
/// ```
/// use rpclens_simcore::event::EventQueue;
/// use rpclens_simcore::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_nanos(20), "second");
/// q.schedule(SimTime::from_nanos(10), "first");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t.as_nanos(), e), (10, "first"));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// Creates an empty queue with capacity pre-reserved for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// Schedules `event` to fire at instant `at`.
    ///
    /// Scheduling in the past is a logic error in the caller; the queue
    /// clamps such events to the current instant so time never runs
    /// backwards, matching how a real event loop would treat an
    /// already-expired timer.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Removes and returns the next event, advancing the clock to its
    /// firing time. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        debug_assert!(s.at >= self.now, "event queue time went backwards");
        self.now = s.at;
        self.popped += 1;
        Some((s.at, s.event))
    }

    /// Returns the firing time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// The current simulated instant (the firing time of the most recently
    /// popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting in the queue.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events popped since creation.
    pub fn events_processed(&self) -> u64 {
        self.popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[50u64, 10, 30, 20, 40] {
            q.schedule(SimTime::from_nanos(t), t);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![10, 20, 30, 40, 50]);
        assert_eq!(q.events_processed(), 5);
    }

    #[test]
    fn ties_fire_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(7);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_and_clamps_past_events() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(100), "a");
        assert_eq!(q.pop().unwrap().0.as_nanos(), 100);
        assert_eq!(q.now().as_nanos(), 100);
        // Scheduling in the past clamps to now.
        q.schedule(SimTime::from_nanos(10), "late");
        let (t, e) = q.pop().unwrap();
        assert_eq!((t.as_nanos(), e), (100, "late"));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(5), ());
        assert_eq!(q.peek_time().unwrap().as_nanos(), 5);
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_monotonic() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), 0u32);
        let mut last = SimTime::ZERO;
        let mut fired = 0;
        while let Some((t, ev)) = q.pop() {
            assert!(t >= last);
            last = t;
            fired += 1;
            if ev < 5 {
                // Each event schedules two children later in time.
                q.schedule(t + SimDuration::from_nanos(3), ev + 1);
                q.schedule(t + SimDuration::from_nanos(1), ev + 1);
            }
        }
        assert_eq!(fired, 2u32.pow(6) - 1);
    }

    proptest! {
        #[test]
        fn arbitrary_schedules_pop_sorted(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_nanos(t), i);
            }
            let mut popped: Vec<(u64, usize)> = Vec::new();
            while let Some((t, i)) = q.pop() {
                popped.push((t.as_nanos(), i));
            }
            prop_assert_eq!(popped.len(), times.len());
            // Time-sorted, and FIFO within equal timestamps (seq == insertion
            // index here, so equal-time runs must have increasing index).
            for w in popped.windows(2) {
                prop_assert!(w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1));
            }
        }
    }
}
