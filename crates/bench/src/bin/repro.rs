//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro all [--scale smoke|default|paper] [--seed N] [--shards N] [--out DIR]
//! repro fig12 fig13 table1 ...
//! repro list
//! ```
//!
//! With `--out DIR`, each artifact's rendered text is also written to
//! `DIR/<artifact>.txt`.
//!
//! Each artifact prints its rendered data followed by the
//! paper-vs-measured expectation checks. The process exits non-zero if
//! any check misses, so CI can gate on shape fidelity.

use rpclens_bench::{produce, run_at_sharded, scale_by_name, Artifact};
use rpclens_fleet::driver::SimScale;

fn usage() -> ! {
    eprintln!(
        "usage: repro <artifact>... | all | list  [--scale smoke|default|paper] [--seed N] [--shards N]\n\
         artifacts: {}",
        Artifact::ALL
            .iter()
            .map(|a| a.name())
            .collect::<Vec<_>>()
            .join(" ")
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut scale = SimScale::default_scale();
    let mut shards: Option<usize> = None;
    let mut out_dir: Option<std::path::PathBuf> = None;
    let mut artifacts: Vec<Artifact> = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => {
                let Some(name) = iter.next() else { usage() };
                let Some(s) = scale_by_name(name) else {
                    eprintln!("unknown scale {name}");
                    usage();
                };
                scale = s;
            }
            "--seed" => {
                let Some(seed) = iter.next().and_then(|s| s.parse().ok()) else {
                    usage()
                };
                scale.seed = seed;
            }
            "--shards" => {
                let Some(n) = iter.next().and_then(|s| s.parse().ok()) else {
                    usage()
                };
                shards = Some(n);
            }
            "--out" => {
                let Some(dir) = iter.next() else { usage() };
                out_dir = Some(std::path::PathBuf::from(dir));
            }
            "all" => artifacts.extend(Artifact::ALL),
            "list" => {
                for a in Artifact::ALL {
                    println!("{}", a.name());
                }
                return;
            }
            name => match Artifact::parse(name) {
                Some(a) => artifacts.push(a),
                None => {
                    eprintln!("unknown artifact {name}");
                    usage();
                }
            },
        }
    }
    if artifacts.is_empty() {
        usage();
    }

    let needs_run = artifacts.iter().any(|a| a.needs_run());
    let run = if needs_run {
        eprintln!(
            "running fleet simulation: scale={} methods={} roots={} seed={}",
            scale.name, scale.total_methods, scale.roots, scale.seed
        );
        let t0 = std::time::Instant::now();
        let run = run_at_sharded(scale, shards);
        eprintln!(
            "simulated {} spans in {} traces ({:.1}s)",
            run.total_spans,
            run.store.len(),
            t0.elapsed().as_secs_f64()
        );
        Some(run)
    } else {
        None
    };

    let mut total = 0;
    let mut passed = 0;
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    for artifact in artifacts {
        let (text, checks) = produce(artifact, run.as_ref());
        if let Some(dir) = &out_dir {
            let path = dir.join(format!("{}.txt", artifact.name()));
            std::fs::write(
                &path,
                format!(
                    "{text}
{checks}
"
                ),
            )
            .expect("write artifact file");
        }
        println!("{}", "=".repeat(72));
        println!("{text}");
        if !checks.items.is_empty() {
            println!("{checks}");
        }
        total += checks.items.len();
        passed += checks.passed();
    }
    println!("{}", "=".repeat(72));
    println!("TOTAL: {passed}/{total} paper-shape checks passed");
    if passed != total {
        std::process::exit(1);
    }
}
