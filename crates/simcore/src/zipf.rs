//! Zipf-distributed integer sampling.
//!
//! Popularity skew in the fleet (the paper's Fig. 3: the top 10 methods take
//! 58% of all calls) is modelled with Zipfian weights; this module provides
//! both a weight generator and a direct sampler.

use crate::rng::Prng;

/// A Zipf distribution over ranks `1..=n` with exponent `s`, sampled by
/// inverting a precomputed cumulative table (exact, O(log n) per sample).
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with exponent `s`.
    ///
    /// # Errors
    ///
    /// Returns an error string if `n == 0` or `s` is negative or non-finite.
    pub fn new(n: usize, s: f64) -> Result<Self, &'static str> {
        if n == 0 {
            return Err("zipf needs at least one rank");
        }
        if !s.is_finite() || s < 0.0 {
            return Err("zipf exponent must be finite and non-negative");
        }
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cumulative.push(acc);
        }
        let total = *cumulative.last().expect("n >= 1");
        for c in &mut cumulative {
            *c /= total;
        }
        Ok(Zipf { cumulative })
    }

    /// Draws a rank in `1..=n` (rank 1 is the most probable).
    pub fn sample(&self, rng: &mut Prng) -> usize {
        let u = rng.next_f64();
        self.cumulative.partition_point(|&c| c <= u) + 1
    }

    /// Returns the probability weights of all ranks (normalised Zipf mass).
    ///
    /// Useful for building an [`crate::alias::AliasTable`] that mixes Zipf
    /// popularity with other factors.
    pub fn weights(n: usize, s: f64) -> Result<Vec<f64>, &'static str> {
        if n == 0 {
            return Err("zipf needs at least one rank");
        }
        if !s.is_finite() || s < 0.0 {
            return Err("zipf exponent must be finite and non-negative");
        }
        let raw: Vec<f64> = (1..=n).map(|k| (k as f64).powf(-s)).collect();
        let total: f64 = raw.iter().sum();
        Ok(raw.into_iter().map(|w| w / total).collect())
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the distribution has zero ranks (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, -1.0).is_err());
        assert!(Zipf::new(10, f64::NAN).is_err());
        assert!(Zipf::weights(0, 1.0).is_err());
    }

    #[test]
    fn rank_one_dominates() {
        let z = Zipf::new(1000, 1.0).unwrap();
        let mut rng = Prng::seed_from(1);
        let n = 100_000;
        let ones = (0..n).filter(|_| z.sample(&mut rng) == 1).count();
        // With s=1 and n=1000, P(rank 1) = 1/H_1000 ≈ 0.1336.
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.1336).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = Zipf::new(4, 0.0).unwrap();
        let mut rng = Prng::seed_from(2);
        let mut counts = [0u32; 4];
        let n = 100_000;
        for _ in 0..n {
            counts[z.sample(&mut rng) - 1] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / n as f64 - 0.25).abs() < 0.01, "{counts:?}");
        }
    }

    #[test]
    fn weights_sum_to_one_and_decrease() {
        let w = Zipf::weights(100, 1.2).unwrap();
        let total: f64 = w.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(w.windows(2).all(|p| p[0] > p[1]));
    }

    proptest! {
        #[test]
        fn samples_in_rank_range(n in 1usize..500, s in 0.0f64..3.0, seed: u64) {
            let z = Zipf::new(n, s).unwrap();
            let mut rng = Prng::seed_from(seed);
            for _ in 0..64 {
                let r = z.sample(&mut rng);
                prop_assert!(r >= 1 && r <= n);
            }
        }
    }
}
