/root/repo/target/debug/examples/storage_tail_tax-083075f167cd5c69.d: examples/storage_tail_tax.rs

/root/repo/target/debug/examples/storage_tail_tax-083075f167cd5c69: examples/storage_tail_tax.rs

examples/storage_tail_tax.rs:
