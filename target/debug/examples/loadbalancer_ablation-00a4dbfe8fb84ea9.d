/root/repo/target/debug/examples/loadbalancer_ablation-00a4dbfe8fb84ea9.d: examples/loadbalancer_ablation.rs Cargo.toml

/root/repo/target/debug/examples/libloadbalancer_ablation-00a4dbfe8fb84ea9.rmeta: examples/loadbalancer_ablation.rs Cargo.toml

examples/loadbalancer_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
