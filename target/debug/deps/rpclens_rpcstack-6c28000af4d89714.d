/root/repo/target/debug/deps/rpclens_rpcstack-6c28000af4d89714.d: crates/rpcstack/src/lib.rs crates/rpcstack/src/codec.rs crates/rpcstack/src/component.rs crates/rpcstack/src/cost.rs crates/rpcstack/src/deadline.rs crates/rpcstack/src/error.rs crates/rpcstack/src/hedging.rs crates/rpcstack/src/loadbalancer.rs crates/rpcstack/src/queue.rs crates/rpcstack/src/retry.rs

/root/repo/target/debug/deps/rpclens_rpcstack-6c28000af4d89714: crates/rpcstack/src/lib.rs crates/rpcstack/src/codec.rs crates/rpcstack/src/component.rs crates/rpcstack/src/cost.rs crates/rpcstack/src/deadline.rs crates/rpcstack/src/error.rs crates/rpcstack/src/hedging.rs crates/rpcstack/src/loadbalancer.rs crates/rpcstack/src/queue.rs crates/rpcstack/src/retry.rs

crates/rpcstack/src/lib.rs:
crates/rpcstack/src/codec.rs:
crates/rpcstack/src/component.rs:
crates/rpcstack/src/cost.rs:
crates/rpcstack/src/deadline.rs:
crates/rpcstack/src/error.rs:
crates/rpcstack/src/hedging.rs:
crates/rpcstack/src/loadbalancer.rs:
crates/rpcstack/src/queue.rs:
crates/rpcstack/src/retry.rs:
