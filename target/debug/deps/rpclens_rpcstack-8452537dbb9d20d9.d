/root/repo/target/debug/deps/rpclens_rpcstack-8452537dbb9d20d9.d: crates/rpcstack/src/lib.rs crates/rpcstack/src/codec.rs crates/rpcstack/src/component.rs crates/rpcstack/src/cost.rs crates/rpcstack/src/deadline.rs crates/rpcstack/src/error.rs crates/rpcstack/src/hedging.rs crates/rpcstack/src/loadbalancer.rs crates/rpcstack/src/queue.rs crates/rpcstack/src/retry.rs

/root/repo/target/debug/deps/librpclens_rpcstack-8452537dbb9d20d9.rlib: crates/rpcstack/src/lib.rs crates/rpcstack/src/codec.rs crates/rpcstack/src/component.rs crates/rpcstack/src/cost.rs crates/rpcstack/src/deadline.rs crates/rpcstack/src/error.rs crates/rpcstack/src/hedging.rs crates/rpcstack/src/loadbalancer.rs crates/rpcstack/src/queue.rs crates/rpcstack/src/retry.rs

/root/repo/target/debug/deps/librpclens_rpcstack-8452537dbb9d20d9.rmeta: crates/rpcstack/src/lib.rs crates/rpcstack/src/codec.rs crates/rpcstack/src/component.rs crates/rpcstack/src/cost.rs crates/rpcstack/src/deadline.rs crates/rpcstack/src/error.rs crates/rpcstack/src/hedging.rs crates/rpcstack/src/loadbalancer.rs crates/rpcstack/src/queue.rs crates/rpcstack/src/retry.rs

crates/rpcstack/src/lib.rs:
crates/rpcstack/src/codec.rs:
crates/rpcstack/src/component.rs:
crates/rpcstack/src/cost.rs:
crates/rpcstack/src/deadline.rs:
crates/rpcstack/src/error.rs:
crates/rpcstack/src/hedging.rs:
crates/rpcstack/src/loadbalancer.rs:
crates/rpcstack/src/queue.rs:
crates/rpcstack/src/retry.rs:
