//! Dense `(u16, u16)`-keyed lookup tables for deployment sites.
//!
//! The fleet driver resolves a `(service, cluster)` pair to site state on
//! every simulated span. A `HashMap` keyed by the pair costs a hash and a
//! probe per lookup and iterates in nondeterministic order; with dense id
//! spaces (services and clusters are both small sequential `u16`s) the
//! lookup collapses to one bounds-checked vector index. [`DensePairMap`]
//! is that table: an `index` vector over the full `major × minor` key
//! grid mapping each present key to a slot in a packed value vector.
//!
//! Values iterate in insertion order, which the caller controls — the
//! fleet driver inserts sites in (service, deployment-position) order, so
//! iteration is deterministic, unlike the `HashMap` it replaces.

/// A dense map from `(u16, u16)` keys to values.
///
/// Lookup is one multiply and one vector index. Memory is
/// `4 * major_dim * minor_dim` bytes for the index grid plus the packed
/// values, which for fleet-shaped inputs (hundreds of services × ~48
/// clusters) is a few hundred kilobytes.
#[derive(Debug, Clone)]
pub struct DensePairMap<T> {
    /// `key -> slot + 1`; 0 means absent.
    index: Vec<u32>,
    values: Vec<T>,
    minor_dim: usize,
}

impl<T> DensePairMap<T> {
    /// Builds a map over the `major_dim × minor_dim` key grid from
    /// `(key, value)` entries. Values keep the entry order.
    ///
    /// # Panics
    ///
    /// Panics if a key is outside the grid or inserted twice.
    pub fn build(
        major_dim: usize,
        minor_dim: usize,
        entries: impl IntoIterator<Item = ((u16, u16), T)>,
    ) -> Self {
        let mut map = DensePairMap {
            index: vec![0u32; major_dim * minor_dim],
            values: Vec::new(),
            minor_dim,
        };
        for ((major, minor), value) in entries {
            assert!(
                (major as usize) < major_dim && (minor as usize) < minor_dim,
                "key ({major}, {minor}) outside {major_dim}x{minor_dim} grid"
            );
            let cell = major as usize * minor_dim + minor as usize;
            assert_eq!(map.index[cell], 0, "duplicate key ({major}, {minor})");
            map.values.push(value);
            map.index[cell] = map.values.len() as u32;
        }
        map
    }

    /// The slot of a key, if present. Slots are stable and index
    /// [`DensePairMap::by_index`]; resolve once, then use the slot for
    /// repeated access.
    #[inline]
    pub fn index_of(&self, major: u16, minor: u16) -> Option<u32> {
        let cell = major as usize * self.minor_dim + minor as usize;
        match self.index.get(cell) {
            Some(&slot) if slot != 0 => Some(slot - 1),
            _ => None,
        }
    }

    /// The value of a key, if present.
    #[inline]
    pub fn get(&self, major: u16, minor: u16) -> Option<&T> {
        self.index_of(major, minor)
            .map(|s| &self.values[s as usize])
    }

    /// The value at a slot returned by [`DensePairMap::index_of`].
    ///
    /// # Panics
    ///
    /// Panics if the slot is out of range.
    #[inline]
    pub fn by_index(&self, slot: u32) -> &T {
        &self.values[slot as usize]
    }

    /// All values, in insertion order.
    pub fn values(&self) -> std::slice::Iter<'_, T> {
        self.values.iter()
    }

    /// Number of present keys.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    #[test]
    fn get_and_index_of_agree() {
        let m = DensePairMap::build(4, 3, [((0u16, 0u16), "a"), ((1, 2), "b"), ((3, 0), "c")]);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        assert_eq!(m.get(0, 0), Some(&"a"));
        assert_eq!(m.get(1, 2), Some(&"b"));
        assert_eq!(m.get(3, 0), Some(&"c"));
        assert_eq!(m.get(2, 2), None);
        let slot = m.index_of(1, 2).unwrap();
        assert_eq!(*m.by_index(slot), "b");
        assert_eq!(m.index_of(0, 1), None);
    }

    #[test]
    fn values_iterate_in_insertion_order() {
        let m = DensePairMap::build(8, 8, (0..8u16).map(|i| ((i, 7 - i), i)));
        let got: Vec<u16> = m.values().copied().collect();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn empty_map_has_no_entries() {
        let m: DensePairMap<u8> = DensePairMap::build(2, 2, []);
        assert!(m.is_empty());
        assert_eq!(m.get(0, 0), None);
    }

    #[test]
    #[should_panic(expected = "duplicate key")]
    fn duplicate_keys_panic() {
        let _ = DensePairMap::build(2, 2, [((0u16, 0u16), 1), ((0, 0), 2)]);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_grid_keys_panic() {
        let _ = DensePairMap::build(2, 2, [((2u16, 0u16), 1)]);
    }

    proptest! {
        #[test]
        fn behaves_like_a_hashmap(
            keys in proptest::collection::vec((0u16..40, 0u16..48), 0..120),
            probes in proptest::collection::vec((0u16..40, 0u16..48), 0..60),
        ) {
            // Last write wins in the reference; deduplicate before
            // building (the dense map rejects duplicate keys).
            let reference: HashMap<(u16, u16), u32> = keys
                .iter()
                .enumerate()
                .map(|(i, &k)| (k, i as u32))
                .collect();
            let entries: Vec<((u16, u16), u32)> =
                reference.iter().map(|(&k, &v)| (k, v)).collect();
            let dense = DensePairMap::build(40, 48, entries);
            prop_assert_eq!(dense.len(), reference.len());
            for (a, b) in probes {
                prop_assert_eq!(dense.get(a, b), reference.get(&(a, b)));
            }
        }
    }
}
