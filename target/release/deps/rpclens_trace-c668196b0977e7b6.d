/root/repo/target/release/deps/rpclens_trace-c668196b0977e7b6.d: crates/trace/src/lib.rs crates/trace/src/collector.rs crates/trace/src/critical_path.rs crates/trace/src/export.rs crates/trace/src/query.rs crates/trace/src/span.rs crates/trace/src/tree.rs

/root/repo/target/release/deps/librpclens_trace-c668196b0977e7b6.rlib: crates/trace/src/lib.rs crates/trace/src/collector.rs crates/trace/src/critical_path.rs crates/trace/src/export.rs crates/trace/src/query.rs crates/trace/src/span.rs crates/trace/src/tree.rs

/root/repo/target/release/deps/librpclens_trace-c668196b0977e7b6.rmeta: crates/trace/src/lib.rs crates/trace/src/collector.rs crates/trace/src/critical_path.rs crates/trace/src/export.rs crates/trace/src/query.rs crates/trace/src/span.rs crates/trace/src/tree.rs

crates/trace/src/lib.rs:
crates/trace/src/collector.rs:
crates/trace/src/critical_path.rs:
crates/trace/src/export.rs:
crates/trace/src/query.rs:
crates/trace/src/span.rs:
crates/trace/src/tree.rs:
