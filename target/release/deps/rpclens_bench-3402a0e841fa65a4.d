/root/repo/target/release/deps/rpclens_bench-3402a0e841fa65a4.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs

/root/repo/target/release/deps/librpclens_bench-3402a0e841fa65a4.rlib: crates/bench/src/lib.rs crates/bench/src/ablation.rs

/root/repo/target/release/deps/librpclens_bench-3402a0e841fa65a4.rmeta: crates/bench/src/lib.rs crates/bench/src/ablation.rs

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
