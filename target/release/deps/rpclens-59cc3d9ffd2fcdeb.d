/root/repo/target/release/deps/rpclens-59cc3d9ffd2fcdeb.d: src/lib.rs

/root/repo/target/release/deps/librpclens-59cc3d9ffd2fcdeb.rlib: src/lib.rs

/root/repo/target/release/deps/librpclens-59cc3d9ffd2fcdeb.rmeta: src/lib.rs

src/lib.rs:
