/root/repo/target/debug/deps/rpclens_tsdb-05f5c5babdf35597.d: crates/tsdb/src/lib.rs crates/tsdb/src/metric.rs crates/tsdb/src/query.rs crates/tsdb/src/store.rs

/root/repo/target/debug/deps/librpclens_tsdb-05f5c5babdf35597.rlib: crates/tsdb/src/lib.rs crates/tsdb/src/metric.rs crates/tsdb/src/query.rs crates/tsdb/src/store.rs

/root/repo/target/debug/deps/librpclens_tsdb-05f5c5babdf35597.rmeta: crates/tsdb/src/lib.rs crates/tsdb/src/metric.rs crates/tsdb/src/query.rs crates/tsdb/src/store.rs

crates/tsdb/src/lib.rs:
crates/tsdb/src/metric.rs:
crates/tsdb/src/query.rs:
crates/tsdb/src/store.rs:
