//! The request/response envelope carried inside codec frames.
//!
//! Every datagram is one [`rpclens_rpcstack::codec`] frame (magic,
//! version, varint header fields, CRC32 trailer). This module defines how
//! the runtime uses the frame header for request/reply matching and what
//! the frame payload carries:
//!
//! - `header.method_id` — the catalog method being invoked;
//! - `header.trace_id`  — the client's identity (its matching namespace);
//! - `header.span_id`   — the per-client request id; a retransmission
//!   reuses it byte-for-byte, which is what lets the server's dedup cache
//!   recognise duplicates;
//! - `flags.RESPONSE`   — direction; `flags.COMPRESSED` — the body went
//!   through [`crate::compress`]; `flags.ERROR` — the response carries a
//!   [`Status`] other than [`Status::Ok`].
//!
//! Request payload: `varint(raw_len) ++ body`. Response payload:
//! `varint(status) ++ varint(decode_ns) ++ varint(exec_ns) ++
//! varint(raw_len) ++ body`. `raw_len` is the *uncompressed* body length
//! so the receiver can size (and verify) decompression; the server's
//! `decode_ns`/`exec_ns` ride back to the client so the wire validation
//! can subtract server-side work from measured round trips.
//!
//! **Trace-context extension (v2 frames).** When `flags.TRACED` is set,
//! the request payload instead begins with a length-prefixed, versioned
//! extension block carrying a [`TraceContext`]:
//! `varint(ext_len) ++ ext ++ varint(raw_len) ++ body`, where `ext` is
//! `version:u8 ++ trace_id:u64le ++ span_id:u64le ++ parent_span_id:u64le
//! ++ flags:u8 (bit 0 = sampled) ++ varint(depth)`. Decoders ignore any
//! trailing bytes inside `ext` beyond the fields they know, so future
//! versions can append fields without breaking this decoder; frames with
//! `TRACED` clear carry the v1 payload byte-for-byte, so pre-tracing
//! fixtures keep decoding (see `tests/golden_frames.rs`).

use crate::compress;
use bytes::{Bytes, BytesMut};
use rpclens_rpcstack::codec::{
    self, get_varint, put_varint, DecodeError, Flags, RpcFrame, RpcHeader,
};

/// Response status carried in the response envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The call executed and the body holds the result.
    Ok,
    /// The server has no handler for the requested method.
    NoSuchMethod,
    /// The request envelope or body failed to decode.
    BadRequest,
    /// The server is shedding load and refused to execute.
    Rejected,
}

impl Status {
    /// Wire code for the status.
    pub fn code(self) -> u64 {
        match self {
            Status::Ok => 0,
            Status::NoSuchMethod => 1,
            Status::BadRequest => 2,
            Status::Rejected => 3,
        }
    }

    /// Parses a wire code.
    pub fn from_code(code: u64) -> Option<Status> {
        match code {
            0 => Some(Status::Ok),
            1 => Some(Status::NoSuchMethod),
            2 => Some(Status::BadRequest),
            3 => Some(Status::Rejected),
            _ => None,
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::NoSuchMethod => "no-such-method",
            Status::BadRequest => "bad-request",
            Status::Rejected => "rejected",
        }
    }
}

/// Distributed-tracing context carried in a request's extension block.
///
/// The ids are opaque 64-bit values chosen by the tracing layer; `depth`
/// counts hops from the trace root (0 at the root client). The context
/// crosses the wire only on requests — a server re-propagates it into
/// its own nested calls via [`TraceContext::child`], which is what turns
/// a multi-hop topology into one causal tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Identity of the whole causal tree.
    pub trace_id: u64,
    /// Identity of this span (one client→server call).
    pub span_id: u64,
    /// The calling span's id, or 0 at the root.
    pub parent_span_id: u64,
    /// Head-sampling decision made at the root; sinks drop unsampled
    /// spans.
    pub sampled: bool,
    /// Hops from the root client (0 = root call).
    pub depth: u32,
}

/// Version byte of the trace-context extension block this module writes.
pub const TRACE_EXT_VERSION: u8 = 1;

/// Fixed-size prefix of the extension block: version byte, three u64
/// ids, and the sampled-flags byte (the varint depth follows).
const TRACE_EXT_FIXED_LEN: usize = 1 + 8 + 8 + 8 + 1;

impl TraceContext {
    /// Derives the context for a nested call made while serving this
    /// span: same trace, this span as parent, one hop deeper.
    pub fn child(&self, span_id: u64) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            span_id,
            parent_span_id: self.span_id,
            sampled: self.sampled,
            depth: self.depth.saturating_add(1),
        }
    }

    /// Whether this is the root span of its trace.
    pub fn is_root(&self) -> bool {
        self.parent_span_id == 0
    }

    fn encode_ext(&self, out: &mut BytesMut) {
        let mut ext = BytesMut::with_capacity(TRACE_EXT_FIXED_LEN + 5);
        ext.extend_from_slice(&[TRACE_EXT_VERSION]);
        ext.extend_from_slice(&self.trace_id.to_le_bytes());
        ext.extend_from_slice(&self.span_id.to_le_bytes());
        ext.extend_from_slice(&self.parent_span_id.to_le_bytes());
        ext.extend_from_slice(&[u8::from(self.sampled)]);
        put_varint(&mut ext, self.depth as u64);
        put_varint(out, ext.len() as u64);
        out.extend_from_slice(&ext);
    }

    fn decode_ext(cursor: &mut &[u8]) -> Result<TraceContext, WireError> {
        let ext_len = get_varint(cursor).map_err(WireError::Frame)? as usize;
        if ext_len > cursor.len() {
            return Err(WireError::Envelope("trace extension truncated"));
        }
        let (mut ext, rest) = cursor.split_at(ext_len);
        *cursor = rest;
        if ext.len() < TRACE_EXT_FIXED_LEN {
            return Err(WireError::Envelope("trace extension too short"));
        }
        let version = ext[0];
        if version == 0 {
            return Err(WireError::Envelope("trace extension version 0"));
        }
        let u64_at =
            |b: &[u8], at: usize| u64::from_le_bytes(b[at..at + 8].try_into().expect("8 bytes"));
        let trace_id = u64_at(ext, 1);
        let span_id = u64_at(ext, 9);
        let parent_span_id = u64_at(ext, 17);
        let sampled = ext[25] & 1 != 0;
        ext = &ext[TRACE_EXT_FIXED_LEN..];
        let depth = get_varint(&mut ext).map_err(WireError::Frame)?;
        // Any bytes remaining in `ext` belong to a future extension
        // version; ignoring them is the forward-compatibility contract.
        Ok(TraceContext {
            trace_id,
            span_id,
            parent_span_id,
            sampled,
            depth: u32::try_from(depth)
                .map_err(|_| WireError::Envelope("trace depth implausible"))?,
        })
    }
}

/// A decoded request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Catalog method id.
    pub method: u64,
    /// The calling client's identity.
    pub client_id: u64,
    /// Per-client request id (retransmissions reuse it).
    pub request_id: u64,
    /// Trace context from the extension block, when the frame carried
    /// one (`flags.TRACED`).
    pub trace: Option<TraceContext>,
    /// Decompressed body bytes.
    pub body: Bytes,
    /// Whether the body crossed the wire compressed.
    pub was_compressed: bool,
    /// Body length as it crossed the wire (compressed size when
    /// `was_compressed`).
    pub wire_body_len: usize,
}

/// A decoded response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Catalog method id (echoed from the request).
    pub method: u64,
    /// The client the response addresses.
    pub client_id: u64,
    /// The request this responds to.
    pub request_id: u64,
    /// Outcome.
    pub status: Status,
    /// Nanoseconds the server spent decoding the request.
    pub server_decode_ns: u64,
    /// Nanoseconds the server spent executing the handler.
    pub server_exec_ns: u64,
    /// Decompressed body bytes.
    pub body: Bytes,
    /// Whether the body crossed the wire compressed.
    pub was_compressed: bool,
    /// Body length as it crossed the wire.
    pub wire_body_len: usize,
}

/// Errors surfaced by the wire runtime.
#[derive(Debug)]
pub enum WireError {
    /// Frame-level decode failure (bad magic/CRC/truncation).
    Frame(DecodeError),
    /// Envelope-level decode failure.
    Envelope(&'static str),
    /// Body decompression failure.
    Compress(compress::CompressError),
    /// Transport I/O failure.
    Io(std::io::Error),
    /// The call exhausted its retransmission budget.
    TimedOut {
        /// Attempts made (including the first transmission).
        attempts: u32,
    },
    /// The server answered with a non-[`Status::Ok`] status.
    Server(Status),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Frame(e) => write!(f, "frame decode: {e}"),
            WireError::Envelope(what) => write!(f, "envelope decode: {what}"),
            WireError::Compress(e) => write!(f, "decompression: {e}"),
            WireError::Io(e) => write!(f, "transport: {e}"),
            WireError::TimedOut { attempts } => {
                write!(f, "no reply after {attempts} attempts")
            }
            WireError::Server(s) => write!(f, "server status {}", s.label()),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// A body prepared for the wire: possibly compressed, with the metadata
/// the envelope needs. Produced by [`encode_body`].
#[derive(Debug, Clone)]
pub struct WireBody {
    /// The bytes that will cross the wire.
    pub bytes: Vec<u8>,
    /// The uncompressed length (`raw_len` in the envelope).
    pub raw_len: usize,
    /// Whether `bytes` is compressed.
    pub compressed: bool,
}

/// Runs the body through compression if requested, keeping the original
/// whenever compression does not actually shrink it.
pub fn encode_body(body: &[u8], try_compress: bool) -> WireBody {
    if try_compress {
        let packed = compress::compress(body);
        if packed.len() < body.len() {
            return WireBody {
                bytes: packed,
                raw_len: body.len(),
                compressed: true,
            };
        }
    }
    WireBody {
        bytes: body.to_vec(),
        raw_len: body.len(),
        compressed: false,
    }
}

/// Serializes a request envelope (everything but the frame) into payload
/// bytes. With a context, prepends the versioned trace extension block;
/// the caller must then frame with [`frame_request_traced`] so the
/// `TRACED` flag matches the payload layout.
pub fn serialize_request_traced(body: &WireBody, trace: Option<&TraceContext>) -> Bytes {
    let mut payload = BytesMut::with_capacity(body.bytes.len() + 40);
    if let Some(ctx) = trace {
        ctx.encode_ext(&mut payload);
    }
    put_varint(&mut payload, body.raw_len as u64);
    payload.extend_from_slice(&body.bytes);
    payload.freeze()
}

/// Serializes a request envelope (everything but the frame) into payload
/// bytes.
pub fn serialize_request(body: &WireBody) -> Bytes {
    serialize_request_traced(body, None)
}

/// Frames a serialized request payload into the final datagram bytes,
/// setting `TRACED` when the payload carries an extension block.
pub fn frame_request_traced(
    method: u64,
    client_id: u64,
    request_id: u64,
    payload: Bytes,
    compressed: bool,
    traced: bool,
) -> Bytes {
    let mut flags = Flags::default();
    if compressed {
        flags = flags.with(Flags::COMPRESSED);
    }
    if traced {
        flags = flags.with(Flags::TRACED);
    }
    codec::encode_frame(&RpcFrame {
        header: RpcHeader {
            method_id: method,
            trace_id: client_id,
            span_id: request_id,
            parent_span_id: 0,
            deadline_ns: 0,
            flags,
        },
        payload,
    })
}

/// Frames a serialized request payload into the final datagram bytes.
pub fn frame_request(
    method: u64,
    client_id: u64,
    request_id: u64,
    payload: Bytes,
    compressed: bool,
) -> Bytes {
    frame_request_traced(method, client_id, request_id, payload, compressed, false)
}

/// Convenience: encode + serialize + frame a request, carrying a trace
/// context when one is supplied.
pub fn encode_request_traced(
    method: u64,
    client_id: u64,
    request_id: u64,
    body: &[u8],
    try_compress: bool,
    trace: Option<&TraceContext>,
) -> Bytes {
    let wire_body = encode_body(body, try_compress);
    let payload = serialize_request_traced(&wire_body, trace);
    frame_request_traced(
        method,
        client_id,
        request_id,
        payload,
        wire_body.compressed,
        trace.is_some(),
    )
}

/// Convenience: encode + serialize + frame a request in one call.
pub fn encode_request(
    method: u64,
    client_id: u64,
    request_id: u64,
    body: &[u8],
    try_compress: bool,
) -> Bytes {
    encode_request_traced(method, client_id, request_id, body, try_compress, None)
}

/// Encodes a response datagram.
#[allow(clippy::too_many_arguments)]
pub fn encode_response(
    method: u64,
    client_id: u64,
    request_id: u64,
    status: Status,
    server_decode_ns: u64,
    server_exec_ns: u64,
    body: &[u8],
    try_compress: bool,
) -> Bytes {
    let wire_body = encode_body(body, try_compress);
    let mut payload = BytesMut::with_capacity(wire_body.bytes.len() + 16);
    put_varint(&mut payload, status.code());
    put_varint(&mut payload, server_decode_ns);
    put_varint(&mut payload, server_exec_ns);
    put_varint(&mut payload, wire_body.raw_len as u64);
    payload.extend_from_slice(&wire_body.bytes);
    let payload = payload.freeze();
    let mut flags = Flags::default().with(Flags::RESPONSE);
    if wire_body.compressed {
        flags = flags.with(Flags::COMPRESSED);
    }
    if status != Status::Ok {
        flags = flags.with(Flags::ERROR);
    }
    codec::encode_frame(&RpcFrame {
        header: RpcHeader {
            method_id: method,
            trace_id: client_id,
            span_id: request_id,
            parent_span_id: 0,
            deadline_ns: 0,
            flags,
        },
        payload,
    })
}

fn decode_wire_body(rest: &[u8], raw_len: u64, compressed: bool) -> Result<Bytes, WireError> {
    if raw_len > 64 * 1024 * 1024 {
        return Err(WireError::Envelope("declared body length implausible"));
    }
    if compressed {
        let raw = compress::decompress(rest, raw_len as usize).map_err(WireError::Compress)?;
        Ok(Bytes::from(raw))
    } else {
        if rest.len() != raw_len as usize {
            return Err(WireError::Envelope("body length mismatch"));
        }
        Ok(Bytes::copy_from_slice(rest))
    }
}

/// The direction a decoded datagram turned out to be.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// A request datagram.
    Request(Request),
    /// A response datagram.
    Response(Response),
}

/// Decodes one datagram: frame (CRC verified) then envelope then body.
pub fn decode(datagram: &[u8]) -> Result<Message, WireError> {
    let frame = codec::decode_frame(datagram).map_err(WireError::Frame)?;
    let compressed = frame.header.flags.contains(Flags::COMPRESSED);
    let mut cursor: &[u8] = &frame.payload;
    if frame.header.flags.contains(Flags::RESPONSE) {
        let status_code = get_varint(&mut cursor).map_err(WireError::Frame)?;
        let status =
            Status::from_code(status_code).ok_or(WireError::Envelope("unknown status code"))?;
        let server_decode_ns = get_varint(&mut cursor).map_err(WireError::Frame)?;
        let server_exec_ns = get_varint(&mut cursor).map_err(WireError::Frame)?;
        let raw_len = get_varint(&mut cursor).map_err(WireError::Frame)?;
        let wire_body_len = cursor.len();
        let body = decode_wire_body(cursor, raw_len, compressed)?;
        Ok(Message::Response(Response {
            method: frame.header.method_id,
            client_id: frame.header.trace_id,
            request_id: frame.header.span_id,
            status,
            server_decode_ns,
            server_exec_ns,
            body,
            was_compressed: compressed,
            wire_body_len,
        }))
    } else {
        let trace = if frame.header.flags.contains(Flags::TRACED) {
            Some(TraceContext::decode_ext(&mut cursor)?)
        } else {
            None
        };
        let raw_len = get_varint(&mut cursor).map_err(WireError::Frame)?;
        let wire_body_len = cursor.len();
        let body = decode_wire_body(cursor, raw_len, compressed)?;
        Ok(Message::Request(Request {
            method: frame.header.method_id,
            client_id: frame.header.trace_id,
            request_id: frame.header.span_id,
            trace,
            body,
            was_compressed: compressed,
            wire_body_len,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn request_roundtrips() {
        let body = b"a small structured payload, repeated: payload payload payload";
        let datagram = encode_request(42, 7, 1001, body, true);
        match decode(&datagram).unwrap() {
            Message::Request(req) => {
                assert_eq!(req.method, 42);
                assert_eq!(req.client_id, 7);
                assert_eq!(req.request_id, 1001);
                assert_eq!(&req.body[..], &body[..]);
                assert!(req.was_compressed, "repetitive body should compress");
                assert!(req.wire_body_len < body.len());
            }
            other => panic!("expected request, got {other:?}"),
        }
    }

    #[test]
    fn incompressible_body_is_sent_raw() {
        // High-entropy body: compression cannot shrink it, so the wire
        // carries the original and the COMPRESSED flag stays clear.
        let body: Vec<u8> = (0..=255u8).collect();
        let datagram = encode_request(1, 1, 1, &body, true);
        match decode(&datagram).unwrap() {
            Message::Request(req) => {
                assert!(!req.was_compressed);
                assert_eq!(req.wire_body_len, body.len());
                assert_eq!(&req.body[..], &body[..]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn response_roundtrips_with_timings_and_status() {
        let body = vec![9u8; 500];
        let datagram = encode_response(3, 8, 55, Status::Ok, 1234, 56789, &body, true);
        match decode(&datagram).unwrap() {
            Message::Response(resp) => {
                assert_eq!(resp.status, Status::Ok);
                assert_eq!(resp.server_decode_ns, 1234);
                assert_eq!(resp.server_exec_ns, 56789);
                assert_eq!(resp.request_id, 55);
                assert_eq!(&resp.body[..], &body[..]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_statuses_set_the_error_flag() {
        let datagram = encode_response(3, 8, 55, Status::NoSuchMethod, 0, 0, b"", false);
        let frame = rpclens_rpcstack::codec::decode_frame(&datagram).unwrap();
        assert!(frame.header.flags.contains(Flags::ERROR));
        match decode(&datagram).unwrap() {
            Message::Response(resp) => assert_eq!(resp.status, Status::NoSuchMethod),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn truncation_is_rejected_at_every_cut() {
        let datagram = encode_request(9, 9, 9, b"body bytes body bytes body bytes", true);
        for cut in 0..datagram.len() {
            assert!(decode(&datagram[..cut]).is_err(), "cut {cut} decoded");
        }
    }

    #[test]
    fn corruption_is_rejected_everywhere() {
        let datagram = encode_request(9, 9, 9, &vec![3u8; 300], true);
        for idx in 0..datagram.len() {
            let mut corrupted = datagram.to_vec();
            corrupted[idx] ^= 0x40;
            assert!(decode(&corrupted).is_err(), "flip at {idx} decoded");
        }
    }

    fn ctx() -> TraceContext {
        TraceContext {
            trace_id: 0xDEAD_BEEF_0123_4567,
            span_id: 42,
            parent_span_id: 7,
            sampled: true,
            depth: 3,
        }
    }

    #[test]
    fn traced_requests_roundtrip_the_context() {
        let body = b"traced payload traced payload traced payload";
        let datagram = encode_request_traced(9, 11, 13, body, true, Some(&ctx()));
        match decode(&datagram).unwrap() {
            Message::Request(req) => {
                assert_eq!(req.trace, Some(ctx()));
                assert_eq!(&req.body[..], &body[..]);
                assert_eq!(req.method, 9);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn untraced_requests_are_byte_identical_to_v1() {
        // The extension is strictly opt-in: passing no context must
        // produce the exact pre-tracing encoding (the compatibility
        // contract the golden fixture pins).
        let body = b"same bytes as before";
        let v1 = encode_request(4, 5, 6, body, true);
        let v2 = encode_request_traced(4, 5, 6, body, true, None);
        assert_eq!(v1, v2);
        match decode(&v1).unwrap() {
            Message::Request(req) => assert_eq!(req.trace, None),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn child_context_re_propagates_the_trace() {
        let child = ctx().child(99);
        assert_eq!(child.trace_id, ctx().trace_id);
        assert_eq!(child.span_id, 99);
        assert_eq!(child.parent_span_id, ctx().span_id);
        assert_eq!(child.depth, 4);
        assert!(child.sampled);
        assert!(!child.is_root());
        let root = TraceContext {
            parent_span_id: 0,
            ..ctx()
        };
        assert!(root.is_root());
    }

    #[test]
    fn unknown_trailing_extension_bytes_are_ignored() {
        // A future encoder may append fields to the extension block;
        // this decoder must skip them. Build the payload by hand with
        // three surplus bytes inside the declared ext length.
        let wire_body = encode_body(b"fwd-compat", false);
        let mut payload = BytesMut::new();
        let mut ext = BytesMut::new();
        ext.extend_from_slice(&[2u8]); // a future version
        ext.extend_from_slice(&1u64.to_le_bytes());
        ext.extend_from_slice(&2u64.to_le_bytes());
        ext.extend_from_slice(&3u64.to_le_bytes());
        ext.extend_from_slice(&[1u8]);
        put_varint(&mut ext, 5);
        ext.extend_from_slice(&[0xAA, 0xBB, 0xCC]); // unknown fields
        put_varint(&mut payload, ext.len() as u64);
        payload.extend_from_slice(&ext);
        put_varint(&mut payload, wire_body.raw_len as u64);
        payload.extend_from_slice(&wire_body.bytes);
        let datagram = frame_request_traced(1, 2, 3, payload.freeze(), false, true);
        match decode(&datagram).unwrap() {
            Message::Request(req) => {
                let t = req.trace.expect("context decoded");
                assert_eq!(t.trace_id, 1);
                assert_eq!(t.span_id, 2);
                assert_eq!(t.parent_span_id, 3);
                assert!(t.sampled);
                assert_eq!(t.depth, 5);
                assert_eq!(&req.body[..], b"fwd-compat");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn truncated_or_corrupt_traced_frames_are_rejected() {
        let datagram = encode_request_traced(9, 9, 9, &[3u8; 200], true, Some(&ctx()));
        for cut in 0..datagram.len() {
            assert!(decode(&datagram[..cut]).is_err(), "cut {cut} decoded");
        }
        for idx in 0..datagram.len() {
            let mut corrupted = datagram.to_vec();
            corrupted[idx] ^= 0x10;
            assert!(decode(&corrupted).is_err(), "flip at {idx} decoded");
        }
    }

    #[test]
    fn status_codes_roundtrip() {
        for s in [
            Status::Ok,
            Status::NoSuchMethod,
            Status::BadRequest,
            Status::Rejected,
        ] {
            assert_eq!(Status::from_code(s.code()), Some(s));
        }
        assert_eq!(Status::from_code(99), None);
    }

    proptest! {
        #[test]
        fn arbitrary_requests_roundtrip(
            method: u64,
            client_id: u64,
            request_id: u64,
            compress_it: bool,
            body in proptest::collection::vec(any::<u8>(), 0..2048),
        ) {
            let datagram = encode_request(method, client_id, request_id, &body, compress_it);
            match decode(&datagram).unwrap() {
                Message::Request(req) => {
                    prop_assert_eq!(req.method, method);
                    prop_assert_eq!(req.client_id, client_id);
                    prop_assert_eq!(req.request_id, request_id);
                    prop_assert_eq!(&req.body[..], &body[..]);
                }
                other => prop_assert!(false, "expected request, got {:?}", other),
            }
        }

        #[test]
        fn arbitrary_responses_roundtrip(
            method: u64,
            request_id: u64,
            decode_ns: u64,
            exec_ns: u64,
            status_code in 0u64..4,
            compress_it: bool,
            body in proptest::collection::vec(any::<u8>(), 0..2048),
        ) {
            let status = Status::from_code(status_code).unwrap();
            let datagram = encode_response(
                method, 77, request_id, status, decode_ns, exec_ns, &body, compress_it,
            );
            match decode(&datagram).unwrap() {
                Message::Response(resp) => {
                    prop_assert_eq!(resp.method, method);
                    prop_assert_eq!(resp.request_id, request_id);
                    prop_assert_eq!(resp.status, status);
                    prop_assert_eq!(resp.server_decode_ns, decode_ns);
                    prop_assert_eq!(resp.server_exec_ns, exec_ns);
                    prop_assert_eq!(&resp.body[..], &body[..]);
                }
                other => prop_assert!(false, "expected response, got {:?}", other),
            }
        }

        #[test]
        fn arbitrary_trace_contexts_roundtrip(
            trace_id: u64,
            span_id: u64,
            parent_span_id: u64,
            sampled: bool,
            depth: u32,
            body in proptest::collection::vec(any::<u8>(), 0..512),
        ) {
            let ctx = TraceContext { trace_id, span_id, parent_span_id, sampled, depth };
            let datagram = encode_request_traced(1, 2, 3, &body, true, Some(&ctx));
            match decode(&datagram).unwrap() {
                Message::Request(req) => {
                    prop_assert_eq!(req.trace, Some(ctx));
                    prop_assert_eq!(&req.body[..], &body[..]);
                }
                other => prop_assert!(false, "expected request, got {:?}", other),
            }
        }

        #[test]
        fn single_byte_corruption_never_decodes(
            body in proptest::collection::vec(any::<u8>(), 1..512),
            idx: usize,
            bit in 0u8..8,
        ) {
            let datagram = encode_request(5, 6, 7, &body, true);
            let mut corrupted = datagram.to_vec();
            let at = idx % corrupted.len();
            corrupted[at] ^= 1 << bit;
            prop_assert!(decode(&corrupted).is_err());
        }
    }
}
