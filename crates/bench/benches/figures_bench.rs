//! One benchmark per paper table/figure: regenerates each artifact's
//! analysis from a cached smoke-scale fleet run. These benches both time
//! the analysis pipeline and serve as the canonical "regenerate
//! everything" entry point under `cargo bench`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rpclens_bench::{produce, run_at, Artifact};
use rpclens_fleet::driver::{FleetRun, SimScale};
use std::sync::OnceLock;

fn shared_run() -> &'static FleetRun {
    static RUN: OnceLock<FleetRun> = OnceLock::new();
    RUN.get_or_init(|| run_at(SimScale::smoke()))
}

fn bench_figures(c: &mut Criterion) {
    let run = shared_run();
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    for artifact in Artifact::ALL {
        g.bench_function(artifact.name(), |b| {
            b.iter(|| {
                let (text, checks) = produce(artifact, Some(run));
                black_box((text.len(), checks.items.len()))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
