/root/repo/target/release/deps/rpclens_fleet-dcc3416814f532f1.d: crates/fleet/src/lib.rs crates/fleet/src/baselines.rs crates/fleet/src/catalog.rs crates/fleet/src/driver.rs crates/fleet/src/growth.rs crates/fleet/src/workload.rs

/root/repo/target/release/deps/rpclens_fleet-dcc3416814f532f1: crates/fleet/src/lib.rs crates/fleet/src/baselines.rs crates/fleet/src/catalog.rs crates/fleet/src/driver.rs crates/fleet/src/growth.rs crates/fleet/src/workload.rs

crates/fleet/src/lib.rs:
crates/fleet/src/baselines.rs:
crates/fleet/src/catalog.rs:
crates/fleet/src/driver.rs:
crates/fleet/src/growth.rs:
crates/fleet/src/workload.rs:
