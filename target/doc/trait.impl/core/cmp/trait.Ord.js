(function() {
    const implementors = Object.fromEntries([["rpclens_simcore",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.Ord.html\" title=\"trait core::cmp::Ord\">Ord</a> for <a class=\"struct\" href=\"rpclens_simcore/time/struct.SimDuration.html\" title=\"struct rpclens_simcore::time::SimDuration\">SimDuration</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.Ord.html\" title=\"trait core::cmp::Ord\">Ord</a> for <a class=\"struct\" href=\"rpclens_simcore/time/struct.SimTime.html\" title=\"struct rpclens_simcore::time::SimTime\">SimTime</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[571]}