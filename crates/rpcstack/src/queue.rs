//! Soft queue models for the client-side and send-side queues.
//!
//! The server *receive* queue is modelled exactly by the worker pool
//! (`rpclens-cluster::pool`); the remaining queues in Fig. 9 — client
//! send, server send, client receive — are not worker-bound but wait for
//! CPU or network availability. They are modelled as load-coupled
//! exponential delays with a rare heavy-tail component: mostly negligible,
//! occasionally large, which is exactly the behaviour Fig. 13 reports
//! (median queueing in the hundreds of microseconds, P99 in the hundreds
//! of milliseconds for the worst methods).

use rpclens_simcore::dist::{BoundedPareto, Sample};
use rpclens_simcore::rng::Prng;
use rpclens_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Parameters for a soft queue.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SoftQueueConfig {
    /// Mean delay when the host is idle.
    pub base_mean: SimDuration,
    /// Extra mean delay per unit of utilization (scaled by `util^2`).
    pub util_mean: SimDuration,
    /// Probability of a stall (GC pause, flow-control, socket backpressure).
    pub stall_prob: f64,
    /// Minimum stall duration.
    pub stall_min: SimDuration,
    /// Maximum stall duration.
    pub stall_max: SimDuration,
    /// Pareto index of stall durations.
    pub stall_alpha: f64,
}

impl Default for SoftQueueConfig {
    fn default() -> Self {
        SoftQueueConfig {
            base_mean: SimDuration::from_micros(10),
            util_mean: SimDuration::from_micros(100),
            stall_prob: 0.003,
            stall_min: SimDuration::from_micros(300),
            stall_max: SimDuration::from_millis(250),
            stall_alpha: 1.05,
        }
    }
}

/// A load-coupled soft queue.
#[derive(Debug, Clone)]
pub struct SoftQueue {
    cfg: SoftQueueConfig,
    stall: BoundedPareto,
}

impl SoftQueue {
    /// Creates a queue from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the stall range is empty or `stall_alpha` is not
    /// positive; the default configuration is always valid.
    pub fn new(cfg: SoftQueueConfig) -> Self {
        let stall = BoundedPareto::new(
            cfg.stall_min.as_secs_f64().max(1e-9),
            cfg.stall_max.as_secs_f64(),
            cfg.stall_alpha,
        )
        .expect("stall range must be valid");
        SoftQueue { cfg, stall }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SoftQueueConfig {
        &self.cfg
    }

    /// Samples the queueing delay for one message when the host is at
    /// `util` utilization (clamped to `[0, 1]`).
    pub fn delay(&self, util: f64, rng: &mut Prng) -> SimDuration {
        let util = util.clamp(0.0, 1.0);
        // Stall probability grows with utilization.
        let stall_prob = self.cfg.stall_prob * (1.0 + 3.0 * util * util);
        if rng.chance(stall_prob) {
            return SimDuration::from_secs_f64(self.stall.sample(rng));
        }
        let mean =
            self.cfg.base_mean.as_secs_f64() + self.cfg.util_mean.as_secs_f64() * util * util;
        SimDuration::from_secs_f64(-rng.next_f64_open().ln() * mean)
    }
}

impl Default for SoftQueue {
    fn default() -> Self {
        SoftQueue::new(SoftQueueConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpclens_simcore::stats::{percentile, sorted_finite};

    fn sample_delays(util: f64, n: usize, seed: u64) -> Vec<f64> {
        let q = SoftQueue::default();
        let mut rng = Prng::seed_from(seed);
        (0..n)
            .map(|_| q.delay(util, &mut rng).as_secs_f64())
            .collect()
    }

    #[test]
    fn idle_queues_are_fast() {
        let sorted = sorted_finite(sample_delays(0.0, 50_000, 1));
        let p50 = percentile(&sorted, 0.5).unwrap();
        assert!(p50 < 50e-6, "idle median {p50}s");
    }

    #[test]
    fn delay_grows_with_utilization() {
        let lo = sorted_finite(sample_delays(0.1, 50_000, 2));
        let hi = sorted_finite(sample_delays(0.9, 50_000, 2));
        let lo_p50 = percentile(&lo, 0.5).unwrap();
        let hi_p50 = percentile(&hi, 0.5).unwrap();
        assert!(hi_p50 > lo_p50 * 3.0, "lo {lo_p50}, hi {hi_p50}");
    }

    #[test]
    fn tail_is_orders_of_magnitude_above_median() {
        // Fig. 13's shape: tail queueing ≫ median queueing.
        let sorted = sorted_finite(sample_delays(0.6, 200_000, 3));
        let p50 = percentile(&sorted, 0.5).unwrap();
        let p999 = percentile(&sorted, 0.999).unwrap();
        let p9999 = percentile(&sorted, 0.9999).unwrap();
        assert!(p999 / p50 > 8.0, "p50 {p50}, p99.9 {p999}");
        assert!(p9999 / p50 > 40.0, "p50 {p50}, p99.99 {p9999}");
    }

    #[test]
    fn stalls_are_bounded() {
        let q = SoftQueue::default();
        let mut rng = Prng::seed_from(4);
        for _ in 0..200_000 {
            let d = q.delay(1.0, &mut rng);
            assert!(d <= SimDuration::from_millis(251), "delay {d}");
        }
    }

    #[test]
    fn out_of_range_utilization_is_clamped() {
        let q = SoftQueue::default();
        let mut rng = Prng::seed_from(5);
        // Must not panic or produce nonsense.
        let a = q.delay(-3.0, &mut rng);
        let b = q.delay(7.0, &mut rng);
        assert!(a < SimDuration::from_secs(1));
        assert!(b < SimDuration::from_secs(1));
    }

    #[test]
    fn deterministic_per_seed() {
        let q = SoftQueue::default();
        let mut a = Prng::seed_from(6);
        let mut b = Prng::seed_from(6);
        for _ in 0..1000 {
            assert_eq!(q.delay(0.5, &mut a), q.delay(0.5, &mut b));
        }
    }
}
