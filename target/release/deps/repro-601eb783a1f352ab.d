/root/repo/target/release/deps/repro-601eb783a1f352ab.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-601eb783a1f352ab: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
