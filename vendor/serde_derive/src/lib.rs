//! No-op `Serialize`/`Deserialize` derives.
//!
//! The vendored `serde` stand-in defines both traits as empty markers, so
//! the derives only need to emit `impl serde::Serialize for Type {}`.
//! Parsing is done directly on the token stream (no `syn`/`quote`), which
//! keeps this crate dependency-free for offline builds. Generic parameters
//! are carried through without bounds, which is sufficient for marker
//! impls.

use proc_macro::{TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    derive_marker(input, "Serialize")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    derive_marker(input, "Deserialize")
}

fn derive_marker(input: TokenStream, trait_name: &str) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut name = None;
    let mut generics_start = None;
    let mut i = 0;
    while i < tokens.len() {
        if let TokenTree::Ident(id) = &tokens[i] {
            let s = id.to_string();
            if s == "struct" || s == "enum" || s == "union" {
                if let Some(TokenTree::Ident(n)) = tokens.get(i + 1) {
                    name = Some(n.to_string());
                    generics_start = Some(i + 2);
                }
                break;
            }
        }
        i += 1;
    }
    let Some(name) = name else {
        return TokenStream::new();
    };

    // Collect the `<...>` generic parameter list, if present.
    let mut params: Vec<String> = Vec::new();
    if let Some(start) = generics_start {
        if matches!(&tokens.get(start), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
            let mut depth = 0i32;
            let mut current = Vec::new();
            for tt in &tokens[start..] {
                match tt {
                    TokenTree::Punct(p) if p.as_char() == '<' => {
                        depth += 1;
                        if depth > 1 {
                            current.push(tt.to_string());
                        }
                    }
                    TokenTree::Punct(p) if p.as_char() == '>' => {
                        depth -= 1;
                        if depth == 0 {
                            if !current.is_empty() {
                                params.push(current.join(" "));
                            }
                            break;
                        }
                        current.push(tt.to_string());
                    }
                    TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                        if !current.is_empty() {
                            params.push(current.join(" "));
                        }
                        current = Vec::new();
                    }
                    other => current.push(other.to_string()),
                }
            }
        }
    }

    // Each parameter becomes (decl-without-default, bare-name-for-use).
    let mut decls = Vec::new();
    let mut uses = Vec::new();
    for p in &params {
        let decl = p.split('=').next().unwrap_or(p).trim().to_string();
        decls.push(decl.clone());
        let head = decl.split(':').next().unwrap_or(&decl).trim();
        let bare = head.strip_prefix("const ").unwrap_or(head).trim();
        uses.push(bare.to_string());
    }

    let (impl_generics, ty_generics) = if decls.is_empty() {
        (String::new(), String::new())
    } else {
        (
            format!("<{}>", decls.join(", ")),
            format!("<{}>", uses.join(", ")),
        )
    };
    format!("impl{impl_generics} serde::{trait_name} for {name}{ty_generics} {{}}")
        .parse()
        .unwrap_or_default()
}
