//! SLO and anomaly detectors over per-window metric streams.
//!
//! Four detectors, mirroring the alerting patterns the paper's fleet runs
//! on top of its Monarch-style time series:
//!
//! - [`error_budget_burn`] — multi-window burn-rate analysis of the
//!   error stream against a success-rate SLO, annotated with whether the
//!   burn coincided with network congestion episodes.
//! - [`tail_regression`] — root-latency tail comparison against a
//!   baseline run manifest.
//! - [`retry_storm`] — retry-amplification analysis: whether the volume
//!   of retries stayed below the configured `RetryBudget` ratio, overall
//!   and per window.
//! - [`metastable_overload`] — goodput-collapse windows: sustained spans
//!   where most offered work fails or is retried, the signature of a
//!   metastable overload state.
//!
//! Detectors take plain slices, not `tsdb` handles, so this crate stays
//! at the bottom of the dependency graph; `rpclens-fleet` adapts its
//! time-series streams into [`WindowSample`] rows. Both detectors are
//! pure functions: same inputs, same findings, in a deterministic order.

use crate::manifest::LatencyQuantiles;

/// SLO parameters for the burn-rate detector.
#[derive(Debug, Clone, Copy)]
pub struct SloConfig {
    /// Success-rate objective in `(0, 1)`, e.g. `0.999`.
    pub success_target: f64,
    /// Burn-rate multiple that raises a warning; `burn >= 2 *
    /// warn_burn_rate` escalates to critical.
    pub warn_burn_rate: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        // 99.9% success objective; warn when errors burn budget at 10x
        // the sustainable rate (a standard fast-burn page threshold).
        SloConfig {
            success_target: 0.999,
            warn_burn_rate: 10.0,
        }
    }
}

/// One aggregation window of driver counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct WindowSample {
    /// Window index (aligned simulated time / window length).
    pub window: u64,
    /// RPCs completed in the window.
    pub rpcs: u64,
    /// Errors injected in the window.
    pub errors: u64,
    /// Wire traversals in the window that hit a congestion episode.
    pub congested_wire: u64,
    /// Retry attempts issued in the window (each is also counted in
    /// `rpcs`, like hedges).
    pub retries: u64,
}

/// How urgent a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational; no action implied.
    Info,
    /// Outside tolerance; worth a look.
    Warn,
    /// Far outside tolerance; the run regressed materially.
    Critical,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Critical => "critical",
        })
    }
}

/// One detector result.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which detector produced this (`error-budget-burn`, `tail-regression`).
    pub detector: &'static str,
    /// What the finding is about (a window, a quantile, ...).
    pub subject: String,
    /// Urgency.
    pub severity: Severity,
    /// Human-readable explanation with the numbers that triggered it.
    pub detail: String,
}

/// Scans per-window samples for error-budget burn above the SLO's
/// sustainable rate. Returns findings in window order; windows with no
/// traffic are skipped.
pub fn error_budget_burn(cfg: &SloConfig, windows: &[WindowSample]) -> Vec<Finding> {
    assert!(
        cfg.success_target > 0.0 && cfg.success_target < 1.0,
        "success_target must be in (0,1), got {}",
        cfg.success_target
    );
    let budget = 1.0 - cfg.success_target;
    let mut findings = Vec::new();
    for w in windows {
        if w.rpcs == 0 {
            continue;
        }
        let error_rate = w.errors as f64 / w.rpcs as f64;
        let burn = error_rate / budget;
        if burn < cfg.warn_burn_rate {
            continue;
        }
        let severity = if burn >= 2.0 * cfg.warn_burn_rate {
            Severity::Critical
        } else {
            Severity::Warn
        };
        let congestion = if w.congested_wire > 0 {
            format!(", {} congested wire traversals in window", w.congested_wire)
        } else {
            String::new()
        };
        findings.push(Finding {
            detector: "error-budget-burn",
            subject: format!("window {}", w.window),
            severity,
            detail: format!(
                "burn rate {burn:.1}x sustainable ({} errors / {} rpcs vs {:.4}% budget{congestion})",
                w.errors,
                w.rpcs,
                budget * 100.0
            ),
        });
    }
    findings
}

/// Compares current root-latency quantiles against a baseline manifest's.
/// A quantile more than `tolerance` (fractional, e.g. `0.10`) above the
/// baseline is a warning; more than `2 * tolerance` is critical. An
/// *improvement* beyond tolerance is reported as info so it is visible
/// when rebaselining.
pub fn tail_regression(
    current: &LatencyQuantiles,
    baseline: &LatencyQuantiles,
    tolerance: f64,
) -> Vec<Finding> {
    assert!(tolerance > 0.0, "tolerance must be positive");
    let mut findings = Vec::new();
    let pairs = [
        ("p50", current.p50_us, baseline.p50_us),
        ("p90", current.p90_us, baseline.p90_us),
        ("p99", current.p99_us, baseline.p99_us),
        ("p999", current.p999_us, baseline.p999_us),
    ];
    for (name, cur, base) in pairs {
        if base == 0 {
            continue;
        }
        let ratio = cur as f64 / base as f64;
        let delta = ratio - 1.0;
        let detail = format!(
            "{name} {cur}µs vs baseline {base}µs ({:+.1}%)",
            delta * 100.0
        );
        if delta > 2.0 * tolerance {
            findings.push(Finding {
                detector: "tail-regression",
                subject: name.to_string(),
                severity: Severity::Critical,
                detail,
            });
        } else if delta > tolerance {
            findings.push(Finding {
                detector: "tail-regression",
                subject: name.to_string(),
                severity: Severity::Warn,
                detail,
            });
        } else if delta < -tolerance {
            findings.push(Finding {
                detector: "tail-regression",
                subject: name.to_string(),
                severity: Severity::Info,
                detail: format!("{detail} — improvement; consider rebaselining"),
            });
        }
    }
    if current.count != baseline.count {
        findings.push(Finding {
            detector: "tail-regression",
            subject: "count".to_string(),
            severity: Severity::Warn,
            detail: format!(
                "sample count changed: {} vs baseline {} — quantiles may not be comparable",
                current.count, baseline.count
            ),
        });
    }
    findings
}

/// Parameters for the retry-storm detector.
#[derive(Debug, Clone, Copy)]
pub struct RetryStormConfig {
    /// The configured `RetryBudget` earn ratio; amplification beyond it
    /// means the budget failed to clamp the storm.
    pub budget_ratio: f64,
    /// Minimum retries in a window before its amplification is judged
    /// (avoids noise from near-empty windows).
    pub min_window_retries: u64,
}

impl Default for RetryStormConfig {
    fn default() -> Self {
        RetryStormConfig {
            budget_ratio: 0.1,
            min_window_retries: 20,
        }
    }
}

/// Analyses retry amplification against the configured retry-budget
/// ratio. Always emits one overall finding when any retries were issued
/// (info when the budget held, warn/critical when amplification exceeded
/// the ratio), plus one finding per window whose local amplification
/// broke the ratio.
pub fn retry_storm(cfg: &RetryStormConfig, windows: &[WindowSample]) -> Vec<Finding> {
    assert!(cfg.budget_ratio > 0.0, "budget_ratio must be positive");
    let total_retries: u64 = windows.iter().map(|w| w.retries).sum();
    if total_retries == 0 {
        return Vec::new();
    }
    let total_rpcs: u64 = windows.iter().map(|w| w.rpcs).sum();
    let primary = total_rpcs.saturating_sub(total_retries).max(1);
    let overall = total_retries as f64 / primary as f64;
    let severity = if overall > 2.0 * cfg.budget_ratio {
        Severity::Critical
    } else if overall > cfg.budget_ratio {
        Severity::Warn
    } else {
        Severity::Info
    };
    let verdict = if overall <= cfg.budget_ratio {
        "budget clamped the storm"
    } else {
        "amplification exceeded the budget ratio"
    };
    let mut findings = vec![Finding {
        detector: "retry-storm",
        subject: "overall".to_string(),
        severity,
        detail: format!(
            "{total_retries} retries / {primary} primary calls = {overall:.4} amplification \
             vs budget ratio {:.2} — {verdict}",
            cfg.budget_ratio
        ),
    }];
    for w in windows {
        if w.retries < cfg.min_window_retries {
            continue;
        }
        let window_primary = w.rpcs.saturating_sub(w.retries).max(1);
        let amp = w.retries as f64 / window_primary as f64;
        if amp <= cfg.budget_ratio {
            continue;
        }
        findings.push(Finding {
            detector: "retry-storm",
            subject: format!("window {}", w.window),
            severity: if amp > 2.0 * cfg.budget_ratio {
                Severity::Critical
            } else {
                Severity::Warn
            },
            detail: format!(
                "{} retries / {window_primary} primary calls = {amp:.4} amplification \
                 vs budget ratio {:.2}",
                w.retries, cfg.budget_ratio
            ),
        });
    }
    findings
}

/// Parameters for the metastable-overload detector.
#[derive(Debug, Clone, Copy)]
pub struct OverloadDetectorConfig {
    /// A window has collapsed when less than this fraction of its
    /// offered work succeeds (neither errors nor retry attempts).
    pub collapse_success_frac: f64,
    /// Minimum run of consecutive collapsed windows worth reporting —
    /// metastability is persistence, a single bad window is just load.
    pub min_consecutive: usize,
}

impl Default for OverloadDetectorConfig {
    fn default() -> Self {
        OverloadDetectorConfig {
            collapse_success_frac: 0.5,
            min_consecutive: 2,
        }
    }
}

/// Finds goodput-collapse runs: maximal spans of consecutive windows in
/// which most offered work failed or was retried. Success fraction is
/// demand-normalized (`(rpcs - errors - retries) / rpcs`), so diurnal
/// troughs do not read as collapse. One finding per run of at least
/// `min_consecutive` windows; a run twice that long escalates to
/// critical.
pub fn metastable_overload(cfg: &OverloadDetectorConfig, windows: &[WindowSample]) -> Vec<Finding> {
    assert!(
        cfg.collapse_success_frac > 0.0 && cfg.collapse_success_frac < 1.0,
        "collapse_success_frac must be in (0,1), got {}",
        cfg.collapse_success_frac
    );
    let collapsed = |w: &WindowSample| {
        if w.rpcs == 0 {
            return false;
        }
        let good = w.rpcs.saturating_sub(w.errors).saturating_sub(w.retries);
        (good as f64 / w.rpcs as f64) < cfg.collapse_success_frac
    };
    let mut findings = Vec::new();
    let mut i = 0;
    while i < windows.len() {
        if !collapsed(&windows[i]) {
            i += 1;
            continue;
        }
        // Extend the run while windows stay adjacent and collapsed.
        let mut j = i;
        while j + 1 < windows.len()
            && windows[j + 1].window == windows[j].window + 1
            && collapsed(&windows[j + 1])
        {
            j += 1;
        }
        let run = &windows[i..=j];
        let len = run.len();
        if len >= cfg.min_consecutive {
            let rpcs: u64 = run.iter().map(|w| w.rpcs).sum();
            let errors: u64 = run.iter().map(|w| w.errors).sum();
            let retries: u64 = run.iter().map(|w| w.retries).sum();
            let good = rpcs.saturating_sub(errors).saturating_sub(retries);
            let frac = good as f64 / rpcs.max(1) as f64;
            findings.push(Finding {
                detector: "metastable-overload",
                subject: format!("windows {}..{}", run[0].window, run[len - 1].window),
                severity: if len >= 2 * cfg.min_consecutive {
                    Severity::Critical
                } else {
                    Severity::Warn
                },
                detail: format!(
                    "goodput collapsed for {len} consecutive windows: only {frac:.0}% of \
                     {rpcs} offered rpcs succeeded ({errors} errors, {retries} retries)",
                    frac = frac * 100.0
                ),
            });
        }
        i = j + 1;
    }
    findings
}

/// Renders findings as a fixed-width text table (or an all-clear line).
pub fn render_findings(findings: &[Finding]) -> String {
    if findings.is_empty() {
        return "SLO check: all clear — no findings.\n".to_string();
    }
    let mut out = String::new();
    out.push_str(&format!(
        "{:<9} {:<19} {:<10} detail\n",
        "severity", "detector", "subject"
    ));
    out.push_str(&"-".repeat(72));
    out.push('\n');
    for f in findings {
        out.push_str(&format!(
            "{:<9} {:<19} {:<10} {}\n",
            f.severity.to_string(),
            f.detector,
            f.subject,
            f.detail
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lat(p50: u64, p90: u64, p99: u64, p999: u64) -> LatencyQuantiles {
        LatencyQuantiles {
            count: 1000,
            sum_us: 0,
            min_us: 1,
            p50_us: p50,
            p90_us: p90,
            p99_us: p99,
            p999_us: p999,
            max_us: p999 * 2,
        }
    }

    #[test]
    fn quiet_windows_raise_nothing() {
        let cfg = SloConfig::default();
        let windows = [
            WindowSample {
                window: 0,
                rpcs: 10_000,
                errors: 5, // 0.05% — half the 0.1% budget, burn 0.5x
                congested_wire: 0,
                retries: 0,
            },
            WindowSample {
                window: 1,
                rpcs: 0, // empty window skipped
                errors: 0,
                congested_wire: 0,
                retries: 0,
            },
        ];
        assert!(error_budget_burn(&cfg, &windows).is_empty());
    }

    #[test]
    fn fast_burn_warns_and_escalates() {
        let cfg = SloConfig::default();
        let windows = [
            WindowSample {
                window: 3,
                rpcs: 1000,
                errors: 12, // 1.2% vs 0.1% budget → 12x
                congested_wire: 40,
                retries: 0,
            },
            WindowSample {
                window: 4,
                rpcs: 1000,
                errors: 30, // 3.0% → 30x ≥ 2*10x → critical
                congested_wire: 0,
                retries: 0,
            },
        ];
        let findings = error_budget_burn(&cfg, &windows);
        assert_eq!(findings.len(), 2);
        assert_eq!(findings[0].severity, Severity::Warn);
        assert!(findings[0].detail.contains("congested wire"));
        assert_eq!(findings[1].severity, Severity::Critical);
        assert!(!findings[1].detail.contains("congested wire"));
    }

    #[test]
    fn tail_regression_grades_by_delta() {
        let baseline = lat(100, 200, 400, 800);
        // p50 unchanged, p90 +15% (warn at 10% tol), p99 +25% (critical),
        // p999 -20% (info/improvement).
        let current = lat(100, 230, 500, 640);
        let findings = tail_regression(&current, &baseline, 0.10);
        let by_subject: Vec<(&str, Severity)> = findings
            .iter()
            .map(|f| (f.subject.as_str(), f.severity))
            .collect();
        assert_eq!(
            by_subject,
            vec![
                ("p90", Severity::Warn),
                ("p99", Severity::Critical),
                ("p999", Severity::Info),
            ]
        );
    }

    #[test]
    fn count_mismatch_is_flagged() {
        let baseline = lat(100, 200, 400, 800);
        let mut current = lat(100, 200, 400, 800);
        current.count = 999;
        let findings = tail_regression(&current, &baseline, 0.10);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].subject, "count");
    }

    #[test]
    fn zero_baseline_quantile_is_skipped() {
        let baseline = LatencyQuantiles::default();
        let current = lat(100, 200, 400, 800);
        // count 1000 vs 0 mismatch still reported, but no divide-by-zero.
        let findings = tail_regression(&current, &baseline, 0.10);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].subject, "count");
    }

    fn w(window: u64, rpcs: u64, errors: u64, retries: u64) -> WindowSample {
        WindowSample {
            window,
            rpcs,
            errors,
            congested_wire: 0,
            retries,
        }
    }

    #[test]
    fn no_retries_means_no_storm_findings() {
        let cfg = RetryStormConfig::default();
        assert!(retry_storm(&cfg, &[w(0, 1000, 10, 0)]).is_empty());
    }

    #[test]
    fn clamped_retries_report_info_overall() {
        let cfg = RetryStormConfig::default();
        // 50 retries over 1000 primary calls: 0.05 < 0.1 ratio.
        let findings = retry_storm(&cfg, &[w(0, 1050, 60, 50)]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].subject, "overall");
        assert_eq!(findings[0].severity, Severity::Info);
        assert!(findings[0].detail.contains("budget clamped"));
    }

    #[test]
    fn storm_escalates_overall_and_flags_windows() {
        let cfg = RetryStormConfig::default();
        // Window 3: 300 retries / 1000 primary = 0.30 > 2 x 0.1.
        let findings = retry_storm(&cfg, &[w(2, 1010, 0, 10), w(3, 1300, 350, 300)]);
        assert_eq!(findings.len(), 2);
        assert_eq!(findings[0].subject, "overall");
        assert_eq!(findings[0].severity, Severity::Warn);
        assert!(findings[0].detail.contains("exceeded"));
        assert_eq!(findings[1].subject, "window 3");
        assert_eq!(findings[1].severity, Severity::Critical);
    }

    #[test]
    fn small_windows_are_not_judged_for_amplification() {
        let cfg = RetryStormConfig::default();
        // 5 retries < min_window_retries, even though local amp is 5.0.
        let findings = retry_storm(&cfg, &[w(0, 2000, 0, 0), w(1, 6, 5, 5)]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].subject, "overall");
    }

    #[test]
    fn isolated_bad_window_is_not_metastable() {
        let cfg = OverloadDetectorConfig::default();
        let findings = metastable_overload(
            &cfg,
            &[w(0, 1000, 10, 0), w(1, 1000, 800, 100), w(2, 1000, 10, 0)],
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn sustained_collapse_is_reported_and_escalates() {
        let cfg = OverloadDetectorConfig::default();
        // Two collapsed windows -> warn.
        let findings = metastable_overload(
            &cfg,
            &[w(4, 1000, 700, 100), w(5, 1000, 600, 50), w(6, 1000, 5, 0)],
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].subject, "windows 4..5");
        assert_eq!(findings[0].severity, Severity::Warn);
        // Four consecutive collapsed windows -> critical.
        let long: Vec<WindowSample> = (10..14).map(|i| w(i, 1000, 900, 50)).collect();
        let findings = metastable_overload(&cfg, &long);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].severity, Severity::Critical);
        assert!(findings[0].detail.contains("4 consecutive windows"));
    }

    #[test]
    fn collapse_runs_must_be_adjacent_windows() {
        let cfg = OverloadDetectorConfig::default();
        // Collapsed windows 2 and 4 are separated by a missing window 3,
        // so neither run reaches min_consecutive.
        let findings = metastable_overload(&cfg, &[w(2, 1000, 900, 0), w(4, 1000, 900, 0)]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn diurnal_troughs_do_not_read_as_collapse() {
        let cfg = OverloadDetectorConfig::default();
        // Low-demand windows with proportionally low errors are healthy.
        let findings = metastable_overload(&cfg, &[w(0, 20, 1, 0), w(1, 15, 0, 0)]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn render_is_stable_and_readable() {
        assert!(render_findings(&[]).contains("all clear"));
        let f = Finding {
            detector: "tail-regression",
            subject: "p99".to_string(),
            severity: Severity::Critical,
            detail: "p99 500µs vs baseline 400µs (+25.0%)".to_string(),
        };
        let table = render_findings(&[f]);
        assert!(table.contains("critical"));
        assert!(table.contains("p99"));
    }
}
