/root/repo/target/debug/deps/rpclens_bench-99af527419e4aa84.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs Cargo.toml

/root/repo/target/debug/deps/librpclens_bench-99af527419e4aa84.rmeta: crates/bench/src/lib.rs crates/bench/src/ablation.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
