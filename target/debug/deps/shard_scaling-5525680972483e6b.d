/root/repo/target/debug/deps/shard_scaling-5525680972483e6b.d: crates/bench/benches/shard_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libshard_scaling-5525680972483e6b.rmeta: crates/bench/benches/shard_scaling.rs Cargo.toml

crates/bench/benches/shard_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
