/root/repo/target/debug/examples/quickstart-27ef6c9d01bd7162.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-27ef6c9d01bd7162.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
