/root/repo/target/debug/examples/crosscluster_spanner-4fc13479a3992138.d: examples/crosscluster_spanner.rs

/root/repo/target/debug/examples/crosscluster_spanner-4fc13479a3992138: examples/crosscluster_spanner.rs

examples/crosscluster_spanner.rs:
