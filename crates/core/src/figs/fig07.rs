//! Fig. 7: per-method response/request size ratio.
//!
//! Paper anchors: a ratio > 1 marks a read-dominant RPC, < 1 a
//! write-dominant one; most methods have a median ratio below 1 (most
//! RPCs write), yet every method serves both directions with heavy tails
//! both ways.

use crate::check::ExpectationSet;
use crate::common::{paper_query, MethodHeatmap};
use crate::render::{sketch_cdf, TextTable};
use rpclens_fleet::driver::FleetRun;

/// The computed figure.
#[derive(Debug)]
pub struct Fig07 {
    /// Per-method response/request ratio quantiles, sorted by median.
    pub heatmap: MethodHeatmap,
}

/// Computes the figure.
pub fn compute(run: &FleetRun) -> Fig07 {
    let query = paper_query();
    Fig07 {
        heatmap: MethodHeatmap::build(run, &query, |_, s| {
            s.response_bytes as f64 / (s.request_bytes as f64).max(1.0)
        }),
    }
}

/// Renders the figure.
pub fn render(fig: &Fig07) -> String {
    let hm = &fig.heatmap;
    let mut t = TextTable::new(&["method#", "P10", "P50", "P90"]);
    let step = (hm.len() / 15).max(1);
    for (i, row) in hm.rows.iter().enumerate().step_by(step) {
        t.row(vec![
            i.to_string(),
            format!("{:.3}", row.summary.p10),
            format!("{:.3}", row.summary.p50),
            format!("{:.3}", row.summary.p90),
        ]);
    }
    format!(
        "Fig. 7 — Per-method response/request ratio ({} methods)\n{}\nCDF of per-method median ratios:\n{}",
        hm.len(),
        t.render(),
        sketch_cdf(&hm.across_methods(0.5), |v| format!("{v:.3}")),
    )
}

/// Paper-vs-measured checks.
pub fn checks(fig: &Fig07) -> ExpectationSet {
    let hm = &fig.heatmap;
    let mut s = ExpectationSet::new();
    s.add(
        "fig7.write_dominant_majority",
        "the median ratio for most methods is below 1 (writes dominate)",
        hm.fraction_where(0.5, |v| v < 1.0),
        0.5,
        1.0,
    );
    // Both read- and write-dominant methods exist.
    s.add(
        "fig7.read_dominant_exist",
        "read-dominant methods (ratio > 1) exist too",
        hm.fraction_where(0.5, |v| v > 1.0),
        0.05,
        0.5,
    );
    // Within-method spread: most methods serve both directions, so the
    // P90/P10 ratio spread is wide.
    let spread = hm
        .rows
        .iter()
        .filter(|r| r.summary.p90 > r.summary.p10 * 5.0)
        .count() as f64
        / hm.rows.len().max(1) as f64;
    s.add(
        "fig7.both_directions",
        "methods serve both small and large responses (heavy two-sided tails)",
        spread,
        0.4,
        1.0,
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testrun::shared;

    #[test]
    fn checks_pass_on_test_run() {
        let fig = compute(shared());
        let c = checks(&fig);
        assert!(c.all_passed(), "{c}");
    }

    #[test]
    fn disk_write_is_write_dominant_and_read_is_read_dominant() {
        let run = shared();
        let fig = compute(run);
        let disk = run.catalog.service_by_name("NetworkDisk").unwrap().id;
        let find = |name: &str| {
            let id = run
                .catalog
                .methods()
                .iter()
                .find(|m| m.service == disk && m.name == name)
                .unwrap()
                .id;
            fig.heatmap.rows.iter().find(|r| r.method == id).unwrap()
        };
        assert!(find("Write").summary.p50 < 0.5, "Write should push bytes");
        assert!(find("Read").summary.p50 > 2.0, "Read should pull bytes");
    }

    #[test]
    fn ratios_are_positive() {
        let fig = compute(shared());
        for r in &fig.heatmap.rows {
            assert!(r.summary.p01 > 0.0);
        }
    }
}
