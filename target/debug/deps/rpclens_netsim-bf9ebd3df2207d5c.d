/root/repo/target/debug/deps/rpclens_netsim-bf9ebd3df2207d5c.d: crates/netsim/src/lib.rs crates/netsim/src/congestion.rs crates/netsim/src/geo.rs crates/netsim/src/latency.rs crates/netsim/src/topology.rs

/root/repo/target/debug/deps/rpclens_netsim-bf9ebd3df2207d5c: crates/netsim/src/lib.rs crates/netsim/src/congestion.rs crates/netsim/src/geo.rs crates/netsim/src/latency.rs crates/netsim/src/topology.rs

crates/netsim/src/lib.rs:
crates/netsim/src/congestion.rs:
crates/netsim/src/geo.rs:
crates/netsim/src/latency.rs:
crates/netsim/src/topology.rs:
