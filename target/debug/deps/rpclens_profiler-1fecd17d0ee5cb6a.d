/root/repo/target/debug/deps/rpclens_profiler-1fecd17d0ee5cb6a.d: crates/profiler/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librpclens_profiler-1fecd17d0ee5cb6a.rmeta: crates/profiler/src/lib.rs Cargo.toml

crates/profiler/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
