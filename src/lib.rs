//! # rpclens
//!
//! A cloud-scale characterization toolkit for remote procedure calls — a
//! full reproduction of *"A Cloud-Scale Characterization of Remote
//! Procedure Calls"* (SOSP 2023) as a Rust workspace:
//!
//! - a deterministic **fleet simulator** (geographic network, loaded
//!   machines, a Stubby-like RPC stack, a calibrated 10,000-method
//!   service catalog),
//! - the three **measurement substrates** the paper's methodology relies
//!   on (a Monarch-like time-series database, a Dapper-like distributed
//!   tracer, and a GWP-like fleet profiler), and
//! - the **characterization suite** that regenerates every table and
//!   figure in the paper's evaluation, with paper-vs-measured shape
//!   checks.
//!
//! # Quickstart
//!
//! ```no_run
//! use rpclens::prelude::*;
//!
//! // Simulate a day of fleet traffic at the default scale.
//! let run = run_fleet(FleetConfig::default());
//! println!("simulated {} RPCs", run.total_spans);
//!
//! // Regenerate Fig. 20 (the RPC cycle tax) from the run.
//! let fig = rpclens::core::figs::fig20::compute(&run);
//! println!("{}", rpclens::core::figs::fig20::render(&fig));
//! assert!(rpclens::core::figs::fig20::checks(&fig).all_passed());
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! per-figure paper-vs-measured record. The `repro` binary
//! (`cargo run --release -p rpclens-bench --bin repro -- all`) regenerates
//! everything.

pub use rpclens_cluster as cluster;
pub use rpclens_core as core;
pub use rpclens_fleet as fleet;
pub use rpclens_netsim as netsim;
pub use rpclens_profiler as profiler;
pub use rpclens_rpcstack as rpcstack;
pub use rpclens_rpcwire as rpcwire;
pub use rpclens_simcore as simcore;
pub use rpclens_trace as trace;
pub use rpclens_tsdb as tsdb;

/// The most commonly used types across the workspace.
pub mod prelude {
    pub use rpclens_cluster::prelude::*;
    pub use rpclens_core::check::{Expectation, ExpectationSet};
    pub use rpclens_fleet::catalog::{Catalog, CatalogConfig, MethodSpec, ServiceSpec};
    pub use rpclens_fleet::driver::{run_fleet, FleetConfig, FleetRun, SimScale};
    pub use rpclens_fleet::growth::{GrowthConfig, GrowthModel};
    pub use rpclens_netsim::prelude::*;
    pub use rpclens_rpcstack::prelude::*;
    pub use rpclens_simcore::prelude::*;
    pub use rpclens_trace::query::MethodQuery;
    pub use rpclens_trace::span::{MethodId, ServiceId};
    pub use rpclens_tsdb::tsdb_prelude::*;
}
