/root/repo/target/debug/deps/substrate_interop-e8692e878037478f.d: tests/substrate_interop.rs Cargo.toml

/root/repo/target/debug/deps/libsubstrate_interop-e8692e878037478f.rmeta: tests/substrate_interop.rs Cargo.toml

tests/substrate_interop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
