//! Measured-vs-modeled validation of the RPC stack cost models.
//!
//! The simulator *prices* the RPC stack (Fig. 9's per-RPC latency
//! breakdown, Fig. 20's cycle tax) with
//! [`rpclens_rpcstack::cost::StackCostModel`]. This harness *executes*
//! the same per-component work on a real wire — `rpclens-rpcwire`'s
//! client/server over UDP loopback (or an in-memory link) serving the
//! fleet catalog's methods — and reports measured nanoseconds next to the
//! model's predictions.
//!
//! Component mapping (one RPC, client perspective):
//!
//! | measured                      | modeled                                     |
//! |-------------------------------|---------------------------------------------|
//! | request compression           | sender compress (request bytes)              |
//! | request envelope + framing    | sender serialize + library + alloc           |
//! | server decode (piggybacked)   | receiver serialize + compress (request)      |
//! | transit residual (RTT − server)| both ends' network (request) + whole response path |
//!
//! The residual bucket is honest about what loopback can and cannot
//! isolate: the response's serialize/compress happens inside the server's
//! reply path and rides home inside the RTT, so its modeled counterpart
//! is folded into the transit row. `docs/WIRE.md` discusses the expected
//! deltas (loopback UDP vs the modeled datacenter TCP stack).

use rpclens_fleet::catalog::{Catalog, CatalogConfig};
use rpclens_fleet::servable::{ServableMethod, ServableTable};
use rpclens_netsim::topology::Topology;
use rpclens_obs::json::Json;
use rpclens_rpcstack::cost::{MessageClass, StackCostConfig, StackCostModel};
use rpclens_rpcwire::client::{RetryPolicy, WireClient};
use rpclens_rpcwire::message::{self, Request, Status, WireError};
use rpclens_rpcwire::payload;
use rpclens_rpcwire::server::{Handler, Semantics, WireServer};
use rpclens_rpcwire::transport::{MemLink, UdpServerSocket, UdpTransport};
use rpclens_simcore::rng::Prng;
use rpclens_trace::span::MethodId;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration for one validation run.
#[derive(Debug, Clone, Copy)]
pub struct WireBenchConfig {
    /// RPCs to round-trip.
    pub requests: u32,
    /// Seed for workload sampling, payload bytes, and retry jitter.
    pub seed: u64,
    /// Catalog size (methods).
    pub total_methods: usize,
    /// Invocation semantics under test.
    pub semantics: Semantics,
}

impl Default for WireBenchConfig {
    fn default() -> Self {
        WireBenchConfig {
            requests: 10_000,
            seed: 42,
            total_methods: 400,
            semantics: Semantics::AtLeastOnce,
        }
    }
}

/// The catalog-backed request handler: samples a response body from the
/// method's size model, deterministically per `(client, request)` so
/// re-execution under at-least-once reproduces the same reply.
pub struct CatalogHandler {
    table: Arc<ServableTable>,
    seed: u64,
    body: Vec<u8>,
}

impl CatalogHandler {
    /// Creates a handler serving `table`.
    pub fn new(table: Arc<ServableTable>, seed: u64) -> CatalogHandler {
        CatalogHandler {
            table,
            seed,
            body: Vec::new(),
        }
    }

    fn method(&self, wire_id: u64) -> Option<&ServableMethod> {
        u32::try_from(wire_id)
            .ok()
            .and_then(|id| self.table.get(MethodId(id)))
    }
}

impl Handler for CatalogHandler {
    fn handle(&mut self, request: &Request) -> (Status, Vec<u8>) {
        let Some(method) = self.method(request.method) else {
            return (Status::NoSuchMethod, Vec::new());
        };
        let mut rng = Prng::seed_from(self.seed ^ request.client_id)
            .stream(request.method)
            .substream(request.request_id);
        let resp_len = payload::sample_wire_len(&method.resp_size, &mut rng);
        payload::fill_body(&mut rng, resp_len, &mut self.body);
        (Status::Ok, std::mem::take(&mut self.body))
    }

    fn compress_response(&self, method: u64) -> bool {
        self.method(method).is_some_and(|m| m.class.compressed)
    }
}

/// Per-component measured/modeled nanosecond sums over a run.
#[derive(Debug, Clone, Copy, Default)]
pub struct ComponentSums {
    /// Request compression on the client.
    pub compress_ns: f64,
    /// Request envelope serialization + framing on the client.
    pub encode_ns: f64,
    /// Server-side request decode (piggybacked in responses).
    pub server_decode_ns: f64,
    /// Everything in flight: RTT minus server decode and handler time.
    pub transit_ns: f64,
}

/// The outcome of one validation run.
#[derive(Debug, Clone)]
pub struct WireReport {
    /// Config echo.
    pub config: WireBenchConfig,
    /// Transport label (`"udp-loopback"` or `"memlink"`).
    pub transport: &'static str,
    /// Calls started.
    pub started: u64,
    /// Calls that completed with a decoded response.
    pub completed: u64,
    /// Calls lost (started minus completed) — the acceptance gate.
    pub lost: u64,
    /// Retransmissions across the run.
    pub retransmissions: u64,
    /// Handler executions on the server.
    pub executed: u64,
    /// Dedup-cache hits on the server.
    pub dedup_hits: u64,
    /// Raw request bytes summed.
    pub request_raw_bytes: u64,
    /// Request bytes that crossed the wire (post-compression).
    pub request_wire_bytes: u64,
    /// Raw response bytes summed.
    pub response_raw_bytes: u64,
    /// Response bytes that crossed the wire.
    pub response_wire_bytes: u64,
    /// Server handler time total (excluded from the comparison — it is
    /// application work, not stack tax).
    pub server_exec_ns: f64,
    /// Measured component sums.
    pub measured: ComponentSums,
    /// Modeled component sums for the same payload byte counts.
    pub modeled: ComponentSums,
    /// RTT percentiles in nanoseconds: (p50, p95, p99).
    pub rtt_percentiles_ns: (f64, f64, f64),
}

impl WireReport {
    /// Measured / modeled ratio per component (NaN-free; 0 when the
    /// model predicts 0).
    pub fn ratios(&self) -> ComponentSums {
        fn ratio(measured: f64, modeled: f64) -> f64 {
            if modeled > 0.0 {
                measured / modeled
            } else {
                0.0
            }
        }
        ComponentSums {
            compress_ns: ratio(self.measured.compress_ns, self.modeled.compress_ns),
            encode_ns: ratio(self.measured.encode_ns, self.modeled.encode_ns),
            server_decode_ns: ratio(
                self.measured.server_decode_ns,
                self.modeled.server_decode_ns,
            ),
            transit_ns: ratio(self.measured.transit_ns, self.modeled.transit_ns),
        }
    }

    /// Renders the manifest-style JSON artifact.
    pub fn to_json(&self) -> Json {
        fn components(c: &ComponentSums) -> Json {
            Json::obj([
                ("compress_ns", Json::Float(c.compress_ns)),
                ("encode_ns", Json::Float(c.encode_ns)),
                ("server_decode_ns", Json::Float(c.server_decode_ns)),
                ("transit_ns", Json::Float(c.transit_ns)),
            ])
        }
        let semantics = match self.config.semantics {
            Semantics::AtMostOnce => "at-most-once",
            Semantics::AtLeastOnce => "at-least-once",
        };
        Json::obj([
            ("kind", Json::Str("wire-validation".into())),
            (
                "config",
                Json::obj([
                    ("requests", Json::Uint(self.config.requests as u128)),
                    ("seed", Json::Uint(self.config.seed as u128)),
                    (
                        "total_methods",
                        Json::Uint(self.config.total_methods as u128),
                    ),
                    ("semantics", Json::Str(semantics.into())),
                    ("transport", Json::Str(self.transport.into())),
                ]),
            ),
            (
                "calls",
                Json::obj([
                    ("started", Json::Uint(self.started as u128)),
                    ("completed", Json::Uint(self.completed as u128)),
                    ("lost", Json::Uint(self.lost as u128)),
                    ("retransmissions", Json::Uint(self.retransmissions as u128)),
                    ("executed", Json::Uint(self.executed as u128)),
                    ("dedup_hits", Json::Uint(self.dedup_hits as u128)),
                ]),
            ),
            (
                "bytes",
                Json::obj([
                    ("request_raw", Json::Uint(self.request_raw_bytes as u128)),
                    ("request_wire", Json::Uint(self.request_wire_bytes as u128)),
                    ("response_raw", Json::Uint(self.response_raw_bytes as u128)),
                    (
                        "response_wire",
                        Json::Uint(self.response_wire_bytes as u128),
                    ),
                    (
                        "compression_ratio",
                        Json::Float(
                            (self.request_wire_bytes + self.response_wire_bytes) as f64
                                / (self.request_raw_bytes + self.response_raw_bytes).max(1) as f64,
                        ),
                    ),
                ]),
            ),
            ("measured_ns", components(&self.measured)),
            ("modeled_ns", components(&self.modeled)),
            ("ratio_measured_over_modeled", components(&self.ratios())),
            (
                "rtt_ns",
                Json::obj([
                    ("p50", Json::Float(self.rtt_percentiles_ns.0)),
                    ("p95", Json::Float(self.rtt_percentiles_ns.1)),
                    ("p99", Json::Float(self.rtt_percentiles_ns.2)),
                ]),
            ),
            ("server_exec_ns", Json::Float(self.server_exec_ns)),
        ])
    }
}

/// Builds the servable table for a config's catalog.
pub fn build_table(config: &WireBenchConfig) -> ServableTable {
    let topology = Topology::default_world(config.seed);
    let catalog = Catalog::generate(
        &CatalogConfig {
            total_methods: config.total_methods,
            seed: config.seed,
        },
        &topology,
    );
    ServableTable::from_catalog(&catalog)
}

/// One prepared, per-stage-timed request.
struct PreparedCall {
    method_class: MessageClass,
    req_raw_len: u64,
    req_wire_len: u64,
    compress_ns: f64,
    encode_ns: f64,
    datagram: bytes::Bytes,
}

fn elapsed_ns(since: Instant) -> f64 {
    since.elapsed().as_nanos() as f64
}

fn prepare_call(
    table: &ServableTable,
    rng: &mut Prng,
    client_id: u64,
    request_id: u64,
    body_buf: &mut Vec<u8>,
) -> PreparedCall {
    let method = table.sample_root(rng);
    let req_len = payload::sample_wire_len(&method.req_size, rng);
    payload::fill_body(rng, req_len, body_buf);

    let compress_started = Instant::now();
    let wire_body = message::encode_body(body_buf, method.class.compressed);
    let compress_ns = elapsed_ns(compress_started);

    let encode_started = Instant::now();
    let payload_bytes = message::serialize_request(&wire_body);
    let datagram = message::frame_request(
        method.method.0 as u64,
        client_id,
        request_id,
        payload_bytes,
        wire_body.compressed,
    );
    let encode_ns = elapsed_ns(encode_started);

    PreparedCall {
        method_class: method.class,
        req_raw_len: wire_body.raw_len as u64,
        req_wire_len: wire_body.bytes.len() as u64,
        compress_ns,
        encode_ns,
        datagram,
    }
}

/// Accumulates one completed call into the report under construction.
struct Accumulator {
    model: StackCostModel,
    report: WireReport,
    rtts: Vec<f64>,
}

impl Accumulator {
    fn new(config: WireBenchConfig, transport: &'static str) -> Accumulator {
        Accumulator {
            model: StackCostModel::new(StackCostConfig::default()),
            report: WireReport {
                config,
                transport,
                started: 0,
                completed: 0,
                lost: 0,
                retransmissions: 0,
                executed: 0,
                dedup_hits: 0,
                request_raw_bytes: 0,
                request_wire_bytes: 0,
                response_raw_bytes: 0,
                response_wire_bytes: 0,
                server_exec_ns: 0.0,
                measured: ComponentSums::default(),
                modeled: ComponentSums::default(),
                rtt_percentiles_ns: (0.0, 0.0, 0.0),
            },
            rtts: Vec::new(),
        }
    }

    fn record(&mut self, prepared: &PreparedCall, response: &message::Response, rtt_ns: f64) {
        let r = &mut self.report;
        r.request_raw_bytes += prepared.req_raw_len;
        r.request_wire_bytes += prepared.req_wire_len;
        r.response_raw_bytes += response.body.len() as u64;
        r.response_wire_bytes += response.wire_body_len as u64;

        let server_ns = (response.server_decode_ns + response.server_exec_ns) as f64;
        r.measured.compress_ns += prepared.compress_ns;
        r.measured.encode_ns += prepared.encode_ns;
        r.measured.server_decode_ns += response.server_decode_ns as f64;
        r.measured.transit_ns += (rtt_ns - server_ns).max(0.0);
        r.server_exec_ns += response.server_exec_ns as f64;
        self.rtts.push(rtt_ns);

        // Modeled counterparts over the same raw payload byte counts.
        let class = prepared.method_class;
        let req_send = self.model.sender_component_ns(prepared.req_raw_len, class);
        let req_recv = self
            .model
            .receiver_component_ns(prepared.req_raw_len, class);
        let resp_bytes = response.body.len() as u64;
        let resp_send = self.model.sender_component_ns(resp_bytes, class);
        let resp_recv = self.model.receiver_component_ns(resp_bytes, class);
        r.modeled.compress_ns += req_send.compress_ns;
        r.modeled.encode_ns += req_send.serialize_ns + req_send.library_ns + req_send.alloc_ns;
        r.modeled.server_decode_ns += req_recv.serialize_ns + req_recv.compress_ns;
        r.modeled.transit_ns +=
            req_send.network_ns + req_recv.network_ns + resp_send.tax_ns + resp_recv.tax_ns;
    }

    fn finish(
        mut self,
        started: u64,
        completed: u64,
        retransmissions: u64,
        executed: u64,
        dedup_hits: u64,
    ) -> WireReport {
        self.report.started = started;
        self.report.completed = completed;
        self.report.lost = started - completed;
        self.report.retransmissions = retransmissions;
        self.report.executed = executed;
        self.report.dedup_hits = dedup_hits;
        self.rtts.sort_by(|a, b| a.total_cmp(b));
        let pct = |p: f64| -> f64 {
            if self.rtts.is_empty() {
                0.0
            } else {
                let idx = ((self.rtts.len() as f64 - 1.0) * p).round() as usize;
                self.rtts[idx]
            }
        };
        self.report.rtt_percentiles_ns = (pct(0.50), pct(0.95), pct(0.99));
        self.report
    }
}

/// Runs the validation with client and server in one thread over an
/// in-memory link; no sockets, deterministic apart from wall timings.
pub fn run_over_memlink(config: &WireBenchConfig) -> Result<WireReport, WireError> {
    let table = Arc::new(build_table(config));
    let (client_end, server_end) = MemLink::pair();
    let mut server = WireServer::new(
        server_end,
        CatalogHandler::new(table.clone(), config.seed),
        config.semantics,
    );
    let mut client = WireClient::new(client_end, 0xBE7C, RetryPolicy::default(), config.seed);
    let mut workload_rng = Prng::seed_from(config.seed).stream(0x317E);
    let mut acc = Accumulator::new(*config, "memlink");
    let mut body_buf = Vec::new();

    for _ in 0..config.requests {
        let request_id = client.allocate_request_id();
        let prepared = prepare_call(
            &table,
            &mut workload_rng,
            client.client_id(),
            request_id,
            &mut body_buf,
        );
        let rtt_started = Instant::now();
        let mut pending = client.start_prepared(request_id, prepared.datagram.clone())?;
        let response = loop {
            server.poll().map_err(WireError::Io)?;
            match client.try_complete(&pending, Duration::ZERO)? {
                Some(resp) => break resp,
                // The link is lossless, so a missing reply means the
                // serve/complete interleaving raced; just resend.
                None => client.retransmit(&mut pending)?,
            }
        };
        let rtt_ns = elapsed_ns(rtt_started);
        acc.record(&prepared, &response, rtt_ns);
    }

    let (cs, ss) = (client.stats(), server.stats());
    Ok(acc.finish(
        cs.calls,
        cs.completed,
        cs.retransmissions,
        ss.executed,
        ss.dedup_hits,
    ))
}

/// Runs the validation over real UDP loopback: the server on its own
/// thread behind a `UdpServerSocket`, the client driving the retry policy
/// with real timers.
pub fn run_over_udp(config: &WireBenchConfig) -> Result<WireReport, WireError> {
    let table = Arc::new(build_table(config));
    let server_socket = UdpServerSocket::bind("127.0.0.1:0").map_err(WireError::Io)?;
    let server_addr = server_socket.local_addr().map_err(WireError::Io)?;
    let stop = Arc::new(AtomicBool::new(false));

    let server_thread = {
        let table = table.clone();
        let stop = stop.clone();
        let seed = config.seed;
        let semantics = config.semantics;
        std::thread::spawn(move || {
            let mut server =
                WireServer::new(server_socket, CatalogHandler::new(table, seed), semantics);
            server
                .serve(Duration::from_millis(5), |_| stop.load(Ordering::Relaxed))
                .expect("wire server failed");
            server.stats()
        })
    };

    let transport = UdpTransport::connect(server_addr).map_err(WireError::Io)?;
    let mut client = WireClient::new(transport, 0xBE7C, RetryPolicy::default(), config.seed);
    let mut workload_rng = Prng::seed_from(config.seed).stream(0x317E);
    let mut acc = Accumulator::new(*config, "udp-loopback");
    let mut body_buf = Vec::new();
    let mut first_error = None;

    for _ in 0..config.requests {
        let request_id = client.allocate_request_id();
        let prepared = prepare_call(
            &table,
            &mut workload_rng,
            client.client_id(),
            request_id,
            &mut body_buf,
        );
        let rtt_started = Instant::now();
        let mut pending = client.start_prepared(request_id, prepared.datagram.clone())?;
        match client.drive(&mut pending) {
            Ok(response) => {
                let rtt_ns = elapsed_ns(rtt_started);
                acc.record(&prepared, &response, rtt_ns);
            }
            Err(e) => {
                // Keep going so the report still captures loss counts; the
                // first error is surfaced alongside.
                if first_error.is_none() {
                    first_error = Some(e);
                }
            }
        }
    }

    stop.store(true, Ordering::Relaxed);
    let server_stats = server_thread.join().expect("server thread panicked");
    let cs = client.stats();
    let report = acc.finish(
        cs.calls,
        cs.completed,
        cs.retransmissions,
        server_stats.executed,
        server_stats.dedup_hits,
    );
    match first_error {
        Some(e) if report.lost > 0 => Err(e),
        _ => Ok(report),
    }
}

/// Serves the catalog over UDP until the process is killed (the
/// `rpclens-wire serve` entry point). Prints the bound address on stdout
/// so scripts can discover an OS-assigned port.
pub fn serve_udp_forever(addr: &str, config: &WireBenchConfig) -> Result<(), WireError> {
    let table = Arc::new(build_table(config));
    let server_socket = UdpServerSocket::bind(addr).map_err(WireError::Io)?;
    let bound = server_socket.local_addr().map_err(WireError::Io)?;
    println!("serving {} methods on {bound}", table.len());
    let mut server = WireServer::new(
        server_socket,
        CatalogHandler::new(table, config.seed),
        config.semantics,
    );
    server
        .serve(Duration::from_millis(50), |_| false)
        .map_err(WireError::Io)
}

/// Renders a human-readable measured-vs-modeled table from a
/// wire-validation artifact (the `rpclens-inspect wire` view).
pub fn wire_text(artifact: &Json) -> Result<String, String> {
    use std::fmt::Write as _;
    let kind = artifact.get("kind").and_then(Json::as_str);
    if kind != Some("wire-validation") {
        return Err(format!(
            "not a wire-validation artifact (kind: {})",
            kind.unwrap_or("missing")
        ));
    }
    let section = |name: &str| -> Result<&Json, String> {
        artifact
            .get(name)
            .ok_or_else(|| format!("artifact missing `{name}`"))
    };
    let field =
        |obj: &Json, name: &str| -> f64 { obj.get(name).and_then(Json::as_f64).unwrap_or(0.0) };
    let count =
        |obj: &Json, name: &str| -> u64 { obj.get(name).and_then(Json::as_u64).unwrap_or(0) };

    let config = section("config")?;
    let calls = section("calls")?;
    let bytes = section("bytes")?;
    let measured = section("measured_ns")?;
    let modeled = section("modeled_ns")?;
    let rtt = section("rtt_ns")?;

    let completed = count(calls, "completed").max(1);
    let mut out = String::new();
    writeln!(
        out,
        "wire validation: {} requests over {} ({} semantics, seed {})",
        count(calls, "started"),
        config
            .get("transport")
            .and_then(Json::as_str)
            .unwrap_or("?"),
        config
            .get("semantics")
            .and_then(Json::as_str)
            .unwrap_or("?"),
        count(config, "seed"),
    )
    .unwrap();
    writeln!(
        out,
        "calls: {} completed, {} lost, {} retransmissions, {} executed, {} dedup hits",
        count(calls, "completed"),
        count(calls, "lost"),
        count(calls, "retransmissions"),
        count(calls, "executed"),
        count(calls, "dedup_hits"),
    )
    .unwrap();
    writeln!(
        out,
        "bytes: {} raw -> {} wire (ratio {:.3})",
        count(bytes, "request_raw") + count(bytes, "response_raw"),
        count(bytes, "request_wire") + count(bytes, "response_wire"),
        field(bytes, "compression_ratio"),
    )
    .unwrap();
    writeln!(
        out,
        "rtt: p50 {:.1} us, p95 {:.1} us, p99 {:.1} us",
        field(rtt, "p50") / 1e3,
        field(rtt, "p95") / 1e3,
        field(rtt, "p99") / 1e3,
    )
    .unwrap();
    writeln!(out).unwrap();
    writeln!(
        out,
        "{:<16} {:>14} {:>14} {:>8}",
        "component", "measured/call", "modeled/call", "ratio"
    )
    .unwrap();
    for key in ["compress_ns", "encode_ns", "server_decode_ns", "transit_ns"] {
        let m = field(measured, key) / completed as f64;
        let p = field(modeled, key) / completed as f64;
        let ratio = if p > 0.0 { m / p } else { 0.0 };
        writeln!(
            out,
            "{:<16} {:>11.1} ns {:>11.1} ns {:>7.2}x",
            key.trim_end_matches("_ns"),
            m,
            p,
            ratio
        )
        .unwrap();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> WireBenchConfig {
        WireBenchConfig {
            requests: 50,
            seed: 7,
            total_methods: 300,
            semantics: Semantics::AtLeastOnce,
        }
    }

    #[test]
    fn memlink_run_loses_nothing_and_reports_components() {
        let report = run_over_memlink(&small_config()).unwrap();
        assert_eq!(report.started, 50);
        assert_eq!(report.completed, 50);
        assert_eq!(report.lost, 0);
        assert!(report.request_raw_bytes > 0);
        assert!(report.measured.compress_ns > 0.0);
        assert!(report.modeled.compress_ns > 0.0);
        assert!(report.modeled.transit_ns > 0.0);
        // Compression actually shrinks the wire (catalog defaults are
        // compressed structured payloads).
        assert!(report.request_wire_bytes < report.request_raw_bytes);
    }

    #[test]
    fn report_json_roundtrips_through_the_obs_parser() {
        let report = run_over_memlink(&small_config()).unwrap();
        let text = report.to_json().to_pretty();
        let parsed = rpclens_obs::json::parse(&text).unwrap();
        assert_eq!(
            parsed.get("kind").and_then(Json::as_str),
            Some("wire-validation")
        );
        let rendered = wire_text(&parsed).unwrap();
        assert!(rendered.contains("compress"), "{rendered}");
        assert!(rendered.contains("ratio"), "{rendered}");
    }

    #[test]
    fn wire_text_rejects_foreign_artifacts() {
        let other = Json::obj([("kind", Json::Str("telemetry".into()))]);
        assert!(wire_text(&other).is_err());
    }

    #[test]
    fn workload_side_is_deterministic_per_seed() {
        let a = run_over_memlink(&small_config()).unwrap();
        let b = run_over_memlink(&small_config()).unwrap();
        // Timings differ run to run, but every byte count and call count
        // must be identical.
        assert_eq!(a.request_raw_bytes, b.request_raw_bytes);
        assert_eq!(a.request_wire_bytes, b.request_wire_bytes);
        assert_eq!(a.response_raw_bytes, b.response_raw_bytes);
        assert_eq!(a.response_wire_bytes, b.response_wire_bytes);
        assert_eq!(a.executed, b.executed);
        assert_eq!(a.modeled.compress_ns, b.modeled.compress_ns);
        assert_eq!(a.modeled.transit_ns, b.modeled.transit_ns);
    }
}
