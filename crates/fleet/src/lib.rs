//! The fleet model: a calibrated synthetic equivalent of the production
//! environment the paper measured.
//!
//! - [`catalog`]: the service/method catalog. Meta-distributions are tuned
//!   so the *population* statistics (latency medians, sizes, popularity
//!   skew, tree shapes) match the paper's published anchors; the eight
//!   services of Table 1 (plus BigQuery from Fig. 15) are pinned
//!   explicitly, including their client-service relationships.
//! - [`workload`]: diurnal open-loop root-RPC arrivals and entry-point
//!   selection.
//! - [`driver`]: the simulation driver. Each trace is expanded in virtual
//!   time through the full nine-component RPC pipeline: client queues,
//!   stack cost model, geographic network with congestion, analytic M/G/k
//!   server queueing coupled to exogenous machine state, nested fan-out,
//!   hedging, and error injection. Spans stream into the tracer, cycles
//!   into the profiler, and counters into the TSDB.
//! - [`pool`]: the dependency-free worker pool the driver runs shards
//!   on — a bounded set of threads claiming shard ids from a shared
//!   counter, with an order-restoring streaming merge ([`pool::OrderedFold`])
//!   so results stay bit-identical at any `--threads` value.
//! - [`streamagg`]: bounded-memory streaming window aggregation — the
//!   per-shard open-window accumulator and the shared sink that builds
//!   the TSDB's cumulative counter series incrementally, so peak
//!   aggregation state is O(services × 1 window) instead of
//!   O(services × windows) per shard.
//! - [`faults`]: the fault-injection plane — named failure scenarios
//!   (machine churn, drains, WAN partitions, overload surges) plus the
//!   client resilience configuration (deadlines, budgeted retries) the
//!   driver executes against them.
//! - [`incident`]: the correlated-incident layer above [`faults`] —
//!   shared cross-entity incidents (a drain surging its placement
//!   neighbours, one WAN cut partitioning a whole region pair, an
//!   overload front sweeping a region) materialized as deterministic
//!   per-entity trajectories the fault plane composes with.
//! - [`control`]: the closed-loop control plane — a deterministic
//!   autoscaler, load-balancer weight shifts, and bounded admission
//!   queues evaluated on window boundaries, identical on every shard.
//! - [`telemetry`]: adapters from a completed run to the `rpclens-obs`
//!   observability plane — run manifests, per-window detector inputs,
//!   and the end-of-run SLO report.
//! - [`growth`]: the 700-day fleet growth model behind Fig. 1.
//! - [`baselines`]: call-graph generators with the published shape
//!   parameters of the Alibaba, Meta, and DeathStarBench studies that
//!   §2.4 compares against.

#![warn(missing_docs)]

pub mod baselines;
pub mod catalog;
pub mod control;
pub mod driver;
pub mod faults;
pub mod growth;
pub mod incident;
pub mod pool;
pub mod servable;
pub mod streamagg;
pub mod telemetry;
pub mod workload;

/// Convenience re-exports of the most commonly used fleet types.
pub mod fleet_prelude {
    pub use crate::{
        catalog::{Catalog, CatalogConfig, MethodSpec, ServiceCategory, ServiceSpec},
        control::{ControlPlane, ControlSpec},
        driver::{run_fleet, FleetConfig, FleetRun, SimScale},
        faults::{FaultPlane, FaultScenario, PartitionState},
        growth::{GrowthConfig, GrowthModel},
        incident::{IncidentPlane, IncidentSpec},
        telemetry::{manifest_for_run, slo_findings, window_samples},
        workload::Workload,
    };
}
