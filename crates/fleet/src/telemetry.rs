//! Adapters from a completed [`FleetRun`] to the observability plane.
//!
//! `rpclens-obs` sits at the bottom of the dependency graph and knows
//! nothing about catalogs, profilers, or the TSDB; this module is the
//! glue. It builds the versioned run manifest from a run's telemetry and
//! rollups, converts the driver's per-window TSDB streams into the plain
//! [`WindowSample`] rows the detectors consume, and assembles the
//! end-of-run SLO report.
//!
//! Everything here is deterministic: manifests are built from integer
//! counters only (the `runtime` section carries the labeled wall-clock
//! fields), and window samples are reconstructed from cumulative
//! counters the driver wrote in sorted window order.

use crate::control::ControlPlane;
use crate::driver::FleetRun;
use crate::incident::IncidentPlane;
use rpclens_obs::{
    error_budget_burn, metastable_overload, retry_storm, tail_regression, Finding,
    OverloadDetectorConfig, RetryStormConfig, RobustnessSection, RunManifest, SloConfig,
    WindowSample,
};
use rpclens_rpcstack::cost::CycleCategory;
use rpclens_rpcstack::error::ErrorKind;
use rpclens_tsdb::metric::{Labels, MetricValue};
use std::collections::HashMap;

/// Default fractional tolerance for tail-latency regression checks.
pub const DEFAULT_TAIL_TOLERANCE: f64 = 0.10;

/// Reference per-window RPC count at which the default detector bands
/// are calibrated. Windows this full (or fuller) use the fleet-default
/// thresholds unchanged.
const BAND_REFERENCE_PER_WINDOW: f64 = 5_000.0;

/// Detector thresholds scaled to the preset's statistics.
///
/// Per-window error counts are binomial, so their relative noise grows
/// as `1/sqrt(n)` when windows get sparse. At the `smoke` preset a
/// 24-hour run spreads ~6k roots over 48 half-hour windows — ~125 RPCs
/// each — where a single unlucky error already reads as a 8x budget
/// burn against a 99.9% objective. Those findings are sampling noise,
/// not regressions (`docs/KNOWN_ISSUES.md`). This widens the
/// burn-rate and tail-tolerance bands by the relative-noise ratio
/// versus a reference window of 5k RPCs; at `paper`/`fleet` scale the
/// factor clamps to 1.0 and the fleet defaults apply unchanged.
pub fn detector_bands(scale: &crate::driver::SimScale) -> (SloConfig, f64) {
    let windows = (scale.duration.as_nanos() as f64
        / rpclens_tsdb::DEFAULT_SAMPLE_PERIOD.as_nanos() as f64)
        .max(1.0);
    let per_window = (scale.roots as f64 / windows).max(1.0);
    let factor = (BAND_REFERENCE_PER_WINDOW / per_window).sqrt().max(1.0);
    let slo = SloConfig {
        warn_burn_rate: SloConfig::default().warn_burn_rate * factor,
        ..SloConfig::default()
    };
    (slo, DEFAULT_TAIL_TOLERANCE * factor)
}

/// Builds the versioned run manifest for a completed run.
///
/// Error kinds and cycle categories are emitted in their canonical enum
/// order (zero entries included) so the rendered bytes never depend on
/// count-ordering ties.
pub fn manifest_for_run(run: &FleetRun) -> RunManifest {
    let counts: HashMap<ErrorKind, u64> = run.errors.kinds_by_count().into_iter().collect();
    let errors_by_kind: Vec<(String, u64)> = ErrorKind::ALL
        .iter()
        .map(|&k| (k.label().to_string(), counts.get(&k).copied().unwrap_or(0)))
        .collect();
    let cycles_by_category: Vec<(String, u128)> = CycleCategory::ALL
        .iter()
        .map(|&c| (c.label().to_string(), run.profiler.category_cycles(c)))
        .collect();
    // Integer cycle-tax computation: ppm of total cycles spent outside
    // the application category. Avoids float rounding in the manifest.
    let total = run.profiler.total_cycles();
    let app = run.profiler.category_cycles(CycleCategory::Application);
    let tax_ppm = ((total - app) * 1_000_000).checked_div(total).unwrap_or(0) as u64;
    let mut manifest = RunManifest::from_telemetry(
        &run.telemetry,
        run.config.scale.seed,
        run.config.scale.name,
        run.catalog.num_methods() as u64,
        run.store.total_spans() as u64,
        errors_by_kind,
        cycles_by_category,
        tax_ppm,
    );
    // Fault-scenario runs carry the robustness section: the executed
    // resilience counters plus the Fig. 23 count/wasted-cycle table. It
    // lives outside the digested deterministic body, so fault-free runs
    // keep their golden digests.
    if run.config.faults.injects_faults() || run.config.faults.retry.is_some() {
        let r = &run.telemetry.counters.resilience;
        manifest.robustness = Some(RobustnessSection {
            scenario: run.config.faults.name.to_string(),
            retries_issued: r.retries_issued,
            retries_denied: r.retries_denied,
            failovers: r.failovers,
            causal_unavailable: r.causal_unavailable,
            load_sheds: r.load_sheds,
            deadline_exceeded: r.deadline_exceeded,
            errors: ErrorKind::ALL
                .iter()
                .map(|&k| {
                    (
                        k.label().to_string(),
                        run.errors.count(k),
                        run.errors.wasted_cycles(k),
                    )
                })
                .collect(),
            incidents: incident_rows(run),
            controllers: controller_rows(run),
        });
    }
    manifest
}

/// Region map of a run's topology, cluster-id indexed — the key the
/// incident and control planes correlate on.
fn region_map(run: &FleetRun) -> Vec<u16> {
    run.topology.clusters().map(|c| c.region.0).collect()
}

/// Incident blast-radius rows for the manifest: entities struck and
/// distinct episodes per incident kind. Reconstructed from the seed —
/// incident trajectories are pure functions of `(seed, spec)`, so no
/// per-shard counter carries them (a counter would multiply by the
/// shard count and break shard invariance).
fn incident_rows(run: &FleetRun) -> Vec<(String, u64, u64)> {
    let Some(spec) = run.config.faults.incidents else {
        return Vec::new();
    };
    let Some(mut plane) = IncidentPlane::new(&spec, run.config.scale.seed, region_map(run)) else {
        return Vec::new();
    };
    plane
        .summary(
            run.config.scale.duration,
            rpclens_tsdb::DEFAULT_SAMPLE_PERIOD,
        )
        .into_iter()
        .map(|row| (row.kind.to_string(), row.entities_struck, row.episodes))
        .collect()
}

/// Controller activity rows for the manifest: the autoscaler timeline
/// reconstructed from the seed (shard-invariant by construction) plus
/// the per-call admission and load-balancer event counters.
fn controller_rows(run: &FleetRun) -> Vec<(String, u64)> {
    let Some(spec) = run.config.faults.control else {
        return Vec::new();
    };
    let mut cp = ControlPlane::from_parts(
        spec,
        run.config.faults.incidents.as_ref(),
        run.config.scale.seed,
        region_map(run),
        rpclens_tsdb::DEFAULT_SAMPLE_PERIOD,
    );
    let (scaled_windows, peak_permille) = cp.autoscaler_activity(
        run.topology.num_clusters() as u16,
        run.config.scale.duration,
    );
    let c = &run.telemetry.counters.control;
    vec![
        ("autoscaler_scaled_windows".to_string(), scaled_windows),
        (
            "autoscaler_peak_capacity_permille".to_string(),
            peak_permille,
        ),
        ("lb_shifts".to_string(), c.lb_shifts),
        ("admission_offered".to_string(), c.admission_offered),
        ("admission_admitted".to_string(), c.admitted()),
        ("admission_shed".to_string(), c.admission_shed),
        ("admission_abandoned".to_string(), c.admission_abandoned),
    ]
}

/// Reconstructs per-window [`WindowSample`] rows from the driver's
/// cumulative `driver/*` TSDB streams. The driver writes all four
/// streams on the same window set, so the join is point-by-point.
pub fn window_samples(run: &FleetRun) -> Vec<WindowSample> {
    let period = rpclens_tsdb::DEFAULT_SAMPLE_PERIOD.as_nanos();
    let deltas = |metric: &str| -> HashMap<u64, u64> {
        let mut out = HashMap::new();
        if let Some(series) = run.tsdb.series(metric, &Labels::empty()) {
            let mut prev = 0u64;
            for (t, v) in series.points() {
                if let MetricValue::Counter(c) = v {
                    out.insert(t.as_nanos() / period, c.saturating_sub(prev));
                    prev = *c;
                }
            }
        }
        out
    };
    let rpcs = deltas("driver/rpcs/count");
    let errors = deltas("driver/errors/count");
    let congested = deltas("driver/wire/congested");
    let retries = deltas("driver/retries/count");
    let mut windows: Vec<u64> = rpcs.keys().copied().collect();
    windows.sort_unstable();
    windows
        .into_iter()
        .map(|w| WindowSample {
            window: w,
            rpcs: rpcs.get(&w).copied().unwrap_or(0),
            errors: errors.get(&w).copied().unwrap_or(0),
            congested_wire: congested.get(&w).copied().unwrap_or(0),
            retries: retries.get(&w).copied().unwrap_or(0),
        })
        .collect()
}

/// Runs the detector suite over a completed run: error-budget burn,
/// retry-storm amplification, and metastable-overload collapse on the
/// live per-window streams, and — when a baseline manifest is supplied —
/// tail-latency regression of the root-latency quantiles against it.
pub fn slo_findings(
    run: &FleetRun,
    baseline: Option<&RunManifest>,
    slo: &SloConfig,
    tail_tolerance: f64,
) -> Vec<Finding> {
    let samples = window_samples(run);
    let mut findings = error_budget_burn(slo, &samples);
    // The retry-storm detector judges amplification against the budget
    // ratio the run was actually configured with.
    let storm_cfg = RetryStormConfig {
        budget_ratio: run
            .config
            .faults
            .retry
            .map(|rs| rs.budget_ratio)
            .unwrap_or(RetryStormConfig::default().budget_ratio),
        ..RetryStormConfig::default()
    };
    findings.extend(retry_storm(&storm_cfg, &samples));
    findings.extend(metastable_overload(
        &OverloadDetectorConfig::default(),
        &samples,
    ));
    if let Some(base) = baseline {
        let current = manifest_for_run(run);
        findings.extend(tail_regression(
            &current.deterministic.root_latency,
            &base.deterministic.root_latency,
            tail_tolerance,
        ));
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_fleet, FleetConfig, SimScale};
    use rpclens_simcore::time::SimDuration;

    fn tiny_run() -> FleetRun {
        let scale = SimScale {
            name: "test",
            total_methods: 320,
            roots: 4_000,
            duration: SimDuration::from_hours(24),
            trace_sample_rate: 1,
            profiler_sample_cap: 10_000,
            seed: 19,
        };
        run_fleet(FleetConfig::at_scale(scale))
    }

    #[test]
    fn manifest_reflects_run_counters() {
        let run = tiny_run();
        let m = manifest_for_run(&run);
        let d = &m.deterministic;
        assert_eq!(d.seed, 19);
        assert_eq!(d.scale, "test");
        assert_eq!(d.roots, 4_000);
        assert_eq!(d.spans, run.total_spans);
        assert_eq!(d.trace_stored_spans, run.store.total_spans() as u64);
        assert_eq!(d.errors_total, run.errors.total_errors());
        assert_eq!(d.cycles_total, run.profiler.total_cycles());
        assert_eq!(d.root_latency.count, 4_000);
        assert!(d.root_latency.p50_us > 0);
        assert!(d.root_latency.p999_us >= d.root_latency.p99_us);
        assert!(d.tax_ppm > 0 && d.tax_ppm < 1_000_000, "tax {}", d.tax_ppm);
        // Canonical, zero-inclusive category lists.
        assert_eq!(d.errors_by_kind.len(), 8);
        assert_eq!(d.cycles_by_category.len(), 8);
        // Runtime section carries the execution shape.
        assert!(m.runtime.shards >= 1);
        assert!(!m.runtime.phases.is_empty());
        // Manifest round-trips through its own JSON.
        let back = RunManifest::parse(&m.to_json_string()).expect("roundtrip");
        assert_eq!(back.deterministic, m.deterministic);
    }

    #[test]
    fn incident_manifest_reports_incidents_and_controllers() {
        let scale = SimScale {
            name: "test",
            total_methods: 320,
            roots: 4_000,
            duration: SimDuration::from_hours(24),
            trace_sample_rate: 1,
            profiler_sample_cap: 10_000,
            seed: 19,
        };
        let mut config = FleetConfig::at_scale(scale);
        config.faults = crate::faults::FaultScenario::incident_smoke();
        let run = run_fleet(config);
        let m = manifest_for_run(&run);
        let rob = m.robustness.as_ref().expect("robustness section");
        // All three incident kinds have trajectories at this eligibility.
        let kinds: Vec<&str> = rob.incidents.iter().map(|(k, _, _)| k.as_str()).collect();
        assert_eq!(kinds, ["cluster-drain", "wan-cut", "overload-front"]);
        assert!(rob
            .incidents
            .iter()
            .all(|&(_, struck, eps)| struck > 0 && eps > 0));
        // Controller rows mirror the run's control counters, and the
        // admission ledger conserves offered calls.
        let c = &run.telemetry.counters.control;
        assert_eq!(
            c.admitted() + c.admission_shed + c.admission_abandoned,
            c.admission_offered
        );
        let row = |name: &str| {
            rob.controllers
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("missing controller row {name}"))
                .1
        };
        assert_eq!(row("admission_offered"), c.admission_offered);
        assert_eq!(row("admission_shed"), c.admission_shed);
        assert_eq!(row("admission_abandoned"), c.admission_abandoned);
        assert_eq!(row("lb_shifts"), c.lb_shifts);
        // Incidents push at least one cluster into sustained overload,
        // so the autoscaler must have scaled at least one window.
        assert!(row("autoscaler_scaled_windows") > 0);
        assert!(row("autoscaler_peak_capacity_permille") > 1_000);
        // The robustness section survives a JSON round-trip.
        let back = RunManifest::parse(&m.to_json_string()).expect("roundtrip");
        let back_rob = back.robustness.expect("robustness after roundtrip");
        assert_eq!(back_rob.incidents, rob.incidents);
        assert_eq!(back_rob.controllers, rob.controllers);
    }

    #[test]
    fn window_samples_sum_to_run_totals() {
        let run = tiny_run();
        let samples = window_samples(&run);
        // 30-minute windows over a 24 h run: up to 48 populated windows.
        assert!(samples.len() >= 40, "{} windows", samples.len());
        let rpcs: u64 = samples.iter().map(|s| s.rpcs).sum();
        let errors: u64 = samples.iter().map(|s| s.errors).sum();
        let congested: u64 = samples.iter().map(|s| s.congested_wire).sum();
        assert_eq!(rpcs, run.total_spans);
        assert_eq!(errors, run.telemetry.counters.errors_injected);
        assert_eq!(congested, run.telemetry.counters.wire.congested);
        assert!(congested > 0, "expected some congested traversals");
        // Windows are strictly increasing.
        assert!(samples.windows(2).all(|w| w[0].window < w[1].window));
    }

    #[test]
    fn self_baseline_has_no_tail_regression() {
        let run = tiny_run();
        let baseline = manifest_for_run(&run);
        let findings = slo_findings(&run, Some(&baseline), &SloConfig::default(), 0.10);
        assert!(
            findings.iter().all(|f| f.detector != "tail-regression"),
            "self-comparison regressed: {findings:?}"
        );
    }

    #[test]
    fn detector_bands_widen_only_for_sparse_windows() {
        use crate::driver::SimScale;
        let (smoke_slo, smoke_tol) = detector_bands(&SimScale::smoke());
        let default_slo = SloConfig::default();
        // Smoke: ~125 RPCs per half-hour window — bands widen by the
        // relative-noise ratio, several-fold.
        assert!(smoke_slo.warn_burn_rate > default_slo.warn_burn_rate * 2.0);
        assert!(smoke_tol > DEFAULT_TAIL_TOLERANCE * 2.0);
        // The success objective itself is never touched.
        assert_eq!(smoke_slo.success_target, default_slo.success_target);
        // A dense preset (>= the reference per-window count) keeps the
        // fleet defaults exactly.
        let mut dense = SimScale::smoke();
        dense.roots = 5_000 * 48 * 10;
        let (dense_slo, dense_tol) = detector_bands(&dense);
        assert_eq!(dense_slo.warn_burn_rate, default_slo.warn_burn_rate);
        assert_eq!(dense_tol, DEFAULT_TAIL_TOLERANCE);
    }

    #[test]
    fn smoke_scale_self_baseline_is_clean_with_scaled_bands() {
        // The satellite this guards: `repro --baseline` at smoke scale
        // used to emit known-noise burn findings. With per-preset bands
        // the self-comparison must come back clean.
        let run = tiny_run();
        let (slo, tol) = detector_bands(&run.config.scale);
        let baseline = manifest_for_run(&run);
        let findings = slo_findings(&run, Some(&baseline), &slo, tol);
        assert!(
            findings.is_empty(),
            "smoke self-baseline should be noise-free: {findings:?}"
        );
    }

    #[test]
    fn degraded_baseline_triggers_regression() {
        let run = tiny_run();
        let mut baseline = manifest_for_run(&run);
        // Pretend the baseline was 2x faster at the tail.
        baseline.deterministic.root_latency.p99_us /= 2;
        baseline.deterministic.root_latency.p999_us /= 2;
        let findings = slo_findings(&run, Some(&baseline), &SloConfig::default(), 0.10);
        assert!(findings
            .iter()
            .any(|f| f.detector == "tail-regression"
                && f.severity == rpclens_obs::Severity::Critical));
    }
}
