//! Gating integration test for the wire validation harness.
//!
//! The in-memory-link path runs here (no sockets, safe for any CI
//! sandbox); the real UDP loopback smoke is `#[ignore]`d and executed by
//! the non-gating CI job (`cargo test ... -- --ignored`).

use rpclens_bench::wire::{run_over_memlink, run_over_udp, wire_text, WireBenchConfig};
use rpclens_obs::json::{parse, Json};
use rpclens_rpcwire::server::Semantics;

fn config(semantics: Semantics) -> WireBenchConfig {
    WireBenchConfig {
        requests: 200,
        seed: 11,
        total_methods: 300,
        semantics,
    }
}

#[test]
fn memlink_validation_run_produces_a_complete_artifact() {
    let report = run_over_memlink(&config(Semantics::AtLeastOnce)).unwrap();
    assert_eq!(report.started, 200);
    assert_eq!(report.lost, 0, "no request may be lost");
    assert_eq!(report.executed, 200);

    let artifact = report.to_json();
    let text = artifact.to_pretty();
    let parsed = parse(&text).expect("artifact is valid JSON");

    // Every section the inspect renderer needs is present.
    for section in [
        "config",
        "calls",
        "bytes",
        "measured_ns",
        "modeled_ns",
        "ratio_measured_over_modeled",
        "rtt_ns",
    ] {
        assert!(parsed.get(section).is_some(), "missing section {section}");
    }
    assert_eq!(
        parsed.get("kind").and_then(Json::as_str),
        Some("wire-validation")
    );
    let calls = parsed.get("calls").unwrap();
    assert_eq!(calls.get("lost").and_then(Json::as_u64), Some(0));

    // Modeled numbers are strictly positive — the comparison is real.
    let modeled = parsed.get("modeled_ns").unwrap();
    for key in ["compress_ns", "encode_ns", "server_decode_ns", "transit_ns"] {
        let v = modeled.get(key).and_then(Json::as_f64).unwrap();
        assert!(v > 0.0, "modeled {key} is {v}");
    }

    let rendered = wire_text(&parsed).unwrap();
    assert!(rendered.contains("wire validation: 200 requests"));
    assert!(rendered.contains("transit"));
}

#[test]
fn at_most_once_memlink_run_also_loses_nothing() {
    let report = run_over_memlink(&config(Semantics::AtMostOnce)).unwrap();
    assert_eq!(report.lost, 0);
    // A lossless link never triggers dedup.
    assert_eq!(report.dedup_hits, 0);
}

#[test]
fn workload_bytes_are_reproducible() {
    let a = run_over_memlink(&config(Semantics::AtLeastOnce)).unwrap();
    let b = run_over_memlink(&config(Semantics::AtLeastOnce)).unwrap();
    assert_eq!(a.request_raw_bytes, b.request_raw_bytes);
    assert_eq!(a.response_wire_bytes, b.response_wire_bytes);
    assert_eq!(a.modeled.transit_ns, b.modeled.transit_ns);
}

/// Real-socket smoke: round-trips catalog RPCs over 127.0.0.1. Run by
/// the non-gating CI job; loopback timing varies with machine load (see
/// docs/KNOWN_ISSUES.md), so only loss counts are asserted.
#[test]
#[ignore = "needs UDP loopback sockets; run with --ignored"]
fn udp_loopback_smoke_round_trips_without_loss() {
    let report = run_over_udp(&WireBenchConfig {
        requests: 1_000,
        seed: 3,
        total_methods: 300,
        semantics: Semantics::AtLeastOnce,
    })
    .unwrap();
    assert_eq!(report.started, 1_000);
    assert_eq!(report.lost, 0, "at-least-once must never lose a request");
    assert!(report.measured.transit_ns > 0.0);
}
