/root/repo/target/debug/deps/rpclens_netsim-d1efc22fe1471534.d: crates/netsim/src/lib.rs crates/netsim/src/congestion.rs crates/netsim/src/geo.rs crates/netsim/src/latency.rs crates/netsim/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/librpclens_netsim-d1efc22fe1471534.rmeta: crates/netsim/src/lib.rs crates/netsim/src/congestion.rs crates/netsim/src/geo.rs crates/netsim/src/latency.rs crates/netsim/src/topology.rs Cargo.toml

crates/netsim/src/lib.rs:
crates/netsim/src/congestion.rs:
crates/netsim/src/geo.rs:
crates/netsim/src/latency.rs:
crates/netsim/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
