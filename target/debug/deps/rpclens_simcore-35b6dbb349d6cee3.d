/root/repo/target/debug/deps/rpclens_simcore-35b6dbb349d6cee3.d: crates/simcore/src/lib.rs crates/simcore/src/alias.rs crates/simcore/src/dist.rs crates/simcore/src/event.rs crates/simcore/src/hist.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/streaming.rs crates/simcore/src/time.rs crates/simcore/src/zipf.rs

/root/repo/target/debug/deps/rpclens_simcore-35b6dbb349d6cee3: crates/simcore/src/lib.rs crates/simcore/src/alias.rs crates/simcore/src/dist.rs crates/simcore/src/event.rs crates/simcore/src/hist.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/streaming.rs crates/simcore/src/time.rs crates/simcore/src/zipf.rs

crates/simcore/src/lib.rs:
crates/simcore/src/alias.rs:
crates/simcore/src/dist.rs:
crates/simcore/src/event.rs:
crates/simcore/src/hist.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/streaming.rs:
crates/simcore/src/time.rs:
crates/simcore/src/zipf.rs:
