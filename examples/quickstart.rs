//! Quickstart: simulate a small fleet day and print the headline
//! characterization numbers.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rpclens::core::figs::{fig03, fig10, fig20, fig23};
use rpclens::prelude::*;

fn main() {
    // A CI-sized fleet: ~400 methods, 6,000 root RPCs over one simulated
    // day. Swap in `SimScale::default_scale()` or `SimScale::paper()` for
    // the calibrated populations.
    let config = FleetConfig::at_scale(SimScale::smoke());
    let t0 = std::time::Instant::now();
    let run = run_fleet(config);
    println!(
        "simulated {} RPCs in {} sampled traces across {} clusters ({:.2}s wall)",
        run.total_spans,
        run.store.len(),
        run.topology.num_clusters(),
        t0.elapsed().as_secs_f64()
    );
    println!(
        "catalog: {} methods in {} services; error rate {:.2}%\n",
        run.catalog.num_methods(),
        run.catalog.num_services(),
        run.errors.error_rate() * 100.0
    );

    // Popularity skew (Fig. 3).
    let popularity = fig03::compute(&run);
    println!("{}", fig03::render(&popularity));

    // The latency tax (Fig. 10).
    let tax = fig10::compute(&run);
    println!("{}", fig10::render(&tax));

    // The cycle tax (Fig. 20).
    let cycles = fig20::compute(&run);
    println!("{}", fig20::render(&cycles));

    // Errors (Fig. 23).
    let errors = fig23::compute(&run);
    println!("{}", fig23::render(&errors));
}
