//! Load-balancer ablation: the cross-layer design §5.2 calls for.
//!
//! The paper observes that the production balancer is latency-aware but
//! CPU-blind, producing heavy cross-cluster CPU imbalance (Fig. 22) and
//! HOL-blocking-driven tail latency (§4.2). This example drives an exact
//! M/G/k worker-pool simulation (the `WorkerPool` + `EventQueue`
//! substrates) under every built-in balancing policy and compares tail
//! queueing delay and per-pool load imbalance.
//!
//! ```text
//! cargo run --release --example loadbalancer_ablation
//! ```

use rpclens::prelude::*;
use rpclens::simcore::stats::{percentile, sorted_finite};

/// One simulated backend: a worker pool plus static context for the
/// balancer.
struct Backend {
    pool: WorkerPool,
    rtt: SimDuration,
    cpu_util: f64,
}

fn run_policy(policy: LbPolicy, seed: u64) -> (f64, f64, f64) {
    let mut rng = Prng::seed_from(seed);
    // Eight backends: mixed proximity and background load.
    let mut backends: Vec<Backend> = (0..8)
        .map(|i| Backend {
            pool: WorkerPool::new(4),
            rtt: SimDuration::from_micros(50 + 400 * (i as u64 % 4)),
            cpu_util: 0.2 + 0.09 * i as f64,
        })
        .collect();
    let mut lb = LoadBalancer::new(policy);

    // Open-loop arrivals: heavy-tailed service times (the paper's
    // "elephant behind a mouse" regime).
    let service = Mixture::new(vec![
        (
            0.95,
            Box::new(LogNormal::from_median_sigma(400e-6, 0.8).expect("valid")) as Box<dyn Sample>,
        ),
        (
            0.05,
            Box::new(LogNormal::from_median_sigma(20e-3, 0.7).expect("valid")),
        ),
    ])
    .expect("valid mixture");

    let mut now = SimTime::ZERO;
    let mut waits = Vec::new();
    let horizon = SimDuration::from_secs(30);
    // Offered load ~70% of aggregate capacity.
    let lambda = 8.0 * 4.0 * 0.7 / 1.4e-3;
    while now.as_secs_f64() < horizon.as_secs_f64() {
        now += SimDuration::from_secs_f64(-rng.next_f64_open().ln() / lambda);
        let targets: Vec<TargetInfo> = backends
            .iter()
            .map(|b| TargetInfo {
                rtt: b.rtt,
                backlog: b.pool.backlog(now),
                cpu_util: b.cpu_util,
                weight: 1.0,
            })
            .collect();
        let pick = lb.pick(&targets, &mut rng);
        let svc = SimDuration::from_secs_f64(service.sample(&mut rng));
        let admission = backends[pick].pool.admit(now, svc);
        waits.push(admission.queue_delay.as_secs_f64());
    }

    let sorted = sorted_finite(waits);
    let p50 = percentile(&sorted, 0.5).expect("samples");
    let p99 = percentile(&sorted, 0.99).expect("samples");
    // CPU imbalance: spread of pool utilizations.
    let utils: Vec<f64> = backends
        .iter()
        .map(|b| b.pool.utilization(horizon))
        .collect();
    let imbalance = utils.iter().cloned().fold(f64::MIN, f64::max)
        - utils.iter().cloned().fold(f64::MAX, f64::min);
    (p50, p99, imbalance)
}

fn main() {
    println!(
        "{:>14}  {:>12}  {:>12}  {:>12}",
        "policy", "P50 wait", "P99 wait", "imbalance"
    );
    for policy in LbPolicy::ALL {
        let (p50, p99, imbalance) = run_policy(policy, 42);
        println!(
            "{:>14}  {:>10.1}us  {:>10.1}us  {:>11.1}%",
            policy.label(),
            p50 * 1e6,
            p99 * 1e6,
            imbalance * 100.0
        );
    }
    println!(
        "\nThe latency-aware policy (the production default the paper\n\
         describes) concentrates load on nearby backends: low median, large\n\
         imbalance. CPU-aware policies trade a little proximity for much\n\
         flatter load — the cross-layer direction §5.2 advocates."
    );
}
