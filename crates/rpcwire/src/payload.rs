//! Deterministic synthetic payload generation.
//!
//! The validation harness serves the fleet catalog's methods, so request
//! and response bodies must follow the catalog's size models
//! (log-normals, clamped like `fleet::catalog`'s payload clamps) while
//! staying cheap to generate and *partially compressible* — real
//! structured RPC payloads compress to roughly half their size (the cost
//! model's default `compression_ratio` is 0.45), and an all-random body
//! would make the executed compression path trivially useless.
//!
//! Bodies are produced block-by-block from a seeded [`Prng`]: each
//! 32-byte block is either a run of one repeated byte, a copy of an
//! earlier block (LZ fodder), or fresh random bytes. The mix is tuned so
//! the LZ-class compressor in [`crate::compress`] lands near the modeled
//! ratio on kilobyte-scale bodies.

use rpclens_simcore::dist::{LogNormal, Sample};
use rpclens_simcore::rng::Prng;

/// Block granularity of the generator.
const BLOCK: usize = 32;

/// Clamp bounds for sampled body sizes on the wire. The catalog's 4 MiB
/// ceiling cannot ride a single UDP datagram, so the wire clamps at
/// 48 KiB and the validation artifact records that truncation (see
/// `docs/WIRE.md`).
pub const MIN_WIRE_PAYLOAD: u64 = 64;
/// Upper clamp; leaves framing headroom under the 64 KiB datagram limit.
pub const MAX_WIRE_PAYLOAD: u64 = 48 * 1024;

/// Samples a body length from a catalog size model, clamped to the
/// wire's datagram budget.
pub fn sample_wire_len(size_model: &LogNormal, rng: &mut Prng) -> usize {
    (size_model.sample(rng) as u64).clamp(MIN_WIRE_PAYLOAD, MAX_WIRE_PAYLOAD) as usize
}

/// Fills `out` with `len` deterministic, partially compressible bytes.
pub fn fill_body(rng: &mut Prng, len: usize, out: &mut Vec<u8>) {
    out.clear();
    out.reserve(len);
    while out.len() < len {
        let take = BLOCK.min(len - out.len());
        let kind = rng.next_f64();
        if kind < 0.40 {
            // A run: one byte repeated (dictionary-friendly).
            let byte = rng.next_u64() as u8;
            out.extend(std::iter::repeat_n(byte, take));
        } else if kind < 0.65 && out.len() >= BLOCK {
            // Repeat an earlier block (back-reference fodder).
            let blocks = out.len() / BLOCK;
            let which = rng.index(blocks);
            let start = which * BLOCK;
            for k in 0..take {
                let b = out[start + k];
                out.push(b);
            }
        } else {
            // Fresh entropy.
            for _ in 0..take {
                out.push(rng.next_u64() as u8);
            }
        }
    }
}

/// Convenience: a fresh body vector.
pub fn make_body(rng: &mut Prng, len: usize) -> Vec<u8> {
    let mut out = Vec::new();
    fill_body(rng, len, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress;

    #[test]
    fn bodies_are_deterministic_per_seed() {
        let a = make_body(&mut Prng::seed_from(77).stream(1), 4096);
        let b = make_body(&mut Prng::seed_from(77).stream(1), 4096);
        assert_eq!(a, b);
        let c = make_body(&mut Prng::seed_from(78).stream(1), 4096);
        assert_ne!(a, c);
    }

    #[test]
    fn bodies_compress_to_roughly_the_modeled_ratio() {
        // The cost model assumes compressed/original ~ 0.45; the
        // generator should land in a broad band around that, neither
        // incompressible nor trivial.
        let mut rng = Prng::seed_from(123);
        let mut total_raw = 0usize;
        let mut total_packed = 0usize;
        for _ in 0..50 {
            let body = make_body(&mut rng, 8192);
            total_raw += body.len();
            total_packed += compress::compress(&body).len().min(body.len());
        }
        let ratio = total_packed as f64 / total_raw as f64;
        assert!(
            (0.25..=0.75).contains(&ratio),
            "compression ratio {ratio:.3} outside plausible band"
        );
    }

    #[test]
    fn sampled_lengths_respect_the_wire_clamp() {
        let huge = LogNormal::from_median_sigma(1024.0 * 1024.0, 1.0).unwrap();
        let tiny = LogNormal::from_median_sigma(4.0, 0.5).unwrap();
        let mut rng = Prng::seed_from(5);
        for _ in 0..1000 {
            let h = sample_wire_len(&huge, &mut rng) as u64;
            let t = sample_wire_len(&tiny, &mut rng) as u64;
            assert!((MIN_WIRE_PAYLOAD..=MAX_WIRE_PAYLOAD).contains(&h));
            assert!((MIN_WIRE_PAYLOAD..=MAX_WIRE_PAYLOAD).contains(&t));
        }
    }

    #[test]
    fn exact_lengths_are_produced() {
        let mut rng = Prng::seed_from(9);
        for len in [0usize, 1, 31, 32, 33, 1000, 48 * 1024] {
            assert_eq!(make_body(&mut rng, len).len(), len);
        }
    }
}
