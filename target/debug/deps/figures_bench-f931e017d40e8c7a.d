/root/repo/target/debug/deps/figures_bench-f931e017d40e8c7a.d: crates/bench/benches/figures_bench.rs Cargo.toml

/root/repo/target/debug/deps/libfigures_bench-f931e017d40e8c7a.rmeta: crates/bench/benches/figures_bench.rs Cargo.toml

crates/bench/benches/figures_bench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
