/root/repo/target/debug/deps/rpclens_bench-1cf197ce19d10ded.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs Cargo.toml

/root/repo/target/debug/deps/librpclens_bench-1cf197ce19d10ded.rmeta: crates/bench/src/lib.rs crates/bench/src/ablation.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
