//! Request hedging ("the tail at scale" technique).
//!
//! A hedged client sends a second copy of a slow request to a different
//! replica and takes whichever answer arrives first, cancelling the loser.
//! The paper attributes most of the fleet's `Cancelled` errors — 45% of
//! all errors and 55% of error-wasted cycles — to hedging (§4.4).

use rpclens_simcore::rng::Prng;
use rpclens_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};

/// A hedging policy for one method.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HedgePolicy {
    /// Whether hedging is enabled at all.
    pub enabled: bool,
    /// Issue the hedge if no response after this long (typically the
    /// method's historical P95).
    pub hedge_after: SimDuration,
    /// Probability that an eligible slow request actually hedges
    /// (brownout guard: hedging everything would double load).
    pub probability: f64,
}

impl HedgePolicy {
    /// A disabled policy.
    pub fn disabled() -> Self {
        HedgePolicy {
            enabled: false,
            hedge_after: SimDuration::ZERO,
            probability: 0.0,
        }
    }

    /// A policy hedging after `hedge_after` with the given probability.
    ///
    /// # Panics
    ///
    /// Panics if `probability` is outside `[0, 1]`.
    pub fn after(hedge_after: SimDuration, probability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "hedge probability must be in [0,1]"
        );
        HedgePolicy {
            enabled: true,
            hedge_after,
            probability,
        }
    }

    /// Decides whether a request that will take `expected_primary` should
    /// issue a hedge, and if so after what delay.
    ///
    /// Returns `None` when no hedge fires: the policy is disabled, the
    /// primary is fast enough that the hedge timer never expires, or the
    /// probabilistic guard declines.
    pub fn decide(&self, expected_primary: SimDuration, rng: &mut Prng) -> Option<SimDuration> {
        if !self.enabled || expected_primary <= self.hedge_after {
            return None;
        }
        rng.chance(self.probability).then_some(self.hedge_after)
    }
}

/// Outcome of a hedged pair: which copy won and how much work the loser
/// performed before cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HedgeOutcome {
    /// Completion time as observed by the caller.
    pub winner_latency: SimDuration,
    /// `true` if the hedge (second copy) won.
    pub hedge_won: bool,
    /// How long the cancelled copy ran before being cancelled.
    pub loser_run_time: SimDuration,
}

/// Resolves a hedged pair given both copies' would-be latencies.
///
/// The hedge starts `hedge_delay` after the primary; the caller observes
/// the earlier finisher, and the loser is cancelled at that instant.
pub fn resolve_hedge(
    primary_latency: SimDuration,
    hedge_latency: SimDuration,
    hedge_delay: SimDuration,
) -> HedgeOutcome {
    let hedge_finish = hedge_delay + hedge_latency;
    if hedge_finish < primary_latency {
        // Hedge wins; the primary has been running the whole time.
        HedgeOutcome {
            winner_latency: hedge_finish,
            hedge_won: true,
            loser_run_time: hedge_finish,
        }
    } else {
        // Primary wins; the hedge ran from hedge_delay until the win (or
        // never started if the primary finished first).
        HedgeOutcome {
            winner_latency: primary_latency,
            hedge_won: false,
            loser_run_time: SimDuration::from_nanos(
                primary_latency
                    .as_nanos()
                    .saturating_sub(hedge_delay.as_nanos()),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_policy_never_hedges() {
        let p = HedgePolicy::disabled();
        let mut rng = Prng::seed_from(1);
        assert_eq!(p.decide(SimDuration::from_secs(10), &mut rng), None);
    }

    #[test]
    fn fast_requests_never_hedge() {
        let p = HedgePolicy::after(SimDuration::from_millis(100), 1.0);
        let mut rng = Prng::seed_from(2);
        assert_eq!(p.decide(SimDuration::from_millis(50), &mut rng), None);
    }

    #[test]
    fn slow_requests_hedge_with_configured_probability() {
        let p = HedgePolicy::after(SimDuration::from_millis(10), 0.3);
        let mut rng = Prng::seed_from(3);
        let n = 100_000;
        let hedged = (0..n)
            .filter(|_| p.decide(SimDuration::from_secs(1), &mut rng).is_some())
            .count();
        let rate = hedged as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "hedge rate {rate}");
    }

    #[test]
    fn hedge_wins_when_much_faster() {
        let o = resolve_hedge(
            SimDuration::from_millis(500),
            SimDuration::from_millis(20),
            SimDuration::from_millis(100),
        );
        assert!(o.hedge_won);
        assert_eq!(o.winner_latency, SimDuration::from_millis(120));
        // The cancelled primary ran until the hedge won.
        assert_eq!(o.loser_run_time, SimDuration::from_millis(120));
    }

    #[test]
    fn primary_wins_when_hedge_is_slow() {
        let o = resolve_hedge(
            SimDuration::from_millis(150),
            SimDuration::from_millis(200),
            SimDuration::from_millis(100),
        );
        assert!(!o.hedge_won);
        assert_eq!(o.winner_latency, SimDuration::from_millis(150));
        assert_eq!(o.loser_run_time, SimDuration::from_millis(50));
    }

    #[test]
    fn primary_wins_before_hedge_starts() {
        let o = resolve_hedge(
            SimDuration::from_millis(80),
            SimDuration::from_millis(200),
            SimDuration::from_millis(100),
        );
        assert!(!o.hedge_won);
        // The hedge never ran.
        assert_eq!(o.loser_run_time, SimDuration::ZERO);
    }

    #[test]
    fn hedging_reduces_observed_latency() {
        // The point of hedging: the observed latency is min(primary,
        // delay + hedge) <= primary.
        for (p, h, d) in [(1000u64, 900u64, 100u64), (500, 10, 50), (50, 50, 100)] {
            let o = resolve_hedge(
                SimDuration::from_millis(p),
                SimDuration::from_millis(h),
                SimDuration::from_millis(d),
            );
            assert!(o.winner_latency <= SimDuration::from_millis(p));
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_probability_panics() {
        let _ = HedgePolicy::after(SimDuration::from_millis(1), 1.5);
    }
}
