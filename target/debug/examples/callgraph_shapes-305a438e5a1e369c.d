/root/repo/target/debug/examples/callgraph_shapes-305a438e5a1e369c.d: examples/callgraph_shapes.rs Cargo.toml

/root/repo/target/debug/examples/libcallgraph_shapes-305a438e5a1e369c.rmeta: examples/callgraph_shapes.rs Cargo.toml

examples/callgraph_shapes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
