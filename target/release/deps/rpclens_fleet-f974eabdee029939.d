/root/repo/target/release/deps/rpclens_fleet-f974eabdee029939.d: crates/fleet/src/lib.rs crates/fleet/src/baselines.rs crates/fleet/src/catalog.rs crates/fleet/src/driver.rs crates/fleet/src/growth.rs crates/fleet/src/workload.rs

/root/repo/target/release/deps/librpclens_fleet-f974eabdee029939.rlib: crates/fleet/src/lib.rs crates/fleet/src/baselines.rs crates/fleet/src/catalog.rs crates/fleet/src/driver.rs crates/fleet/src/growth.rs crates/fleet/src/workload.rs

/root/repo/target/release/deps/librpclens_fleet-f974eabdee029939.rmeta: crates/fleet/src/lib.rs crates/fleet/src/baselines.rs crates/fleet/src/catalog.rs crates/fleet/src/driver.rs crates/fleet/src/growth.rs crates/fleet/src/workload.rs

crates/fleet/src/lib.rs:
crates/fleet/src/baselines.rs:
crates/fleet/src/catalog.rs:
crates/fleet/src/driver.rs:
crates/fleet/src/growth.rs:
crates/fleet/src/workload.rs:
