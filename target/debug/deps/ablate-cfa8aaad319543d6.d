/root/repo/target/debug/deps/ablate-cfa8aaad319543d6.d: crates/bench/src/bin/ablate.rs Cargo.toml

/root/repo/target/debug/deps/libablate-cfa8aaad319543d6.rmeta: crates/bench/src/bin/ablate.rs Cargo.toml

crates/bench/src/bin/ablate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
