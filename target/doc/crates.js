window.ALL_CRATES = ["rpclens_fleet","rpclens_simcore"];
//{"start":21,"fragment_lengths":[15,18]}