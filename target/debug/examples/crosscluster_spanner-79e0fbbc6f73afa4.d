/root/repo/target/debug/examples/crosscluster_spanner-79e0fbbc6f73afa4.d: examples/crosscluster_spanner.rs Cargo.toml

/root/repo/target/debug/examples/libcrosscluster_spanner-79e0fbbc6f73afa4.rmeta: examples/crosscluster_spanner.rs Cargo.toml

examples/crosscluster_spanner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
