//! Per-method trace queries with the paper's filters.
//!
//! The paper's per-method analyses (§2.1) apply three rules that this
//! module encodes once so every figure uses identical semantics:
//!
//! 1. Only methods with ≥ 100 samples are analysed (so P99 is defined).
//! 2. Erroneous RPCs are excluded from latency distributions.
//! 3. Some figures restrict to intra-cluster calls (client and server in
//!    the same cluster).

use crate::collector::TraceStore;
use crate::span::{MethodId, SpanRecord, TraceData};
use crate::tree::TreeStats;
use rpclens_netsim::topology::ClusterId;
use rpclens_rpcstack::component::LatencyComponent;
use std::collections::HashMap;

/// The paper's minimum sample count for per-method statistics.
pub const MIN_SAMPLES: usize = 100;

/// A reusable per-method query over a [`TraceStore`].
#[derive(Debug, Clone, Copy)]
pub struct MethodQuery {
    /// Drop erroneous spans (the paper's latency rule).
    pub exclude_errors: bool,
    /// Keep only spans whose client and server share a cluster.
    pub intra_cluster_only: bool,
    /// Keep only spans served from this cluster (for per-cluster views).
    pub server_cluster: Option<ClusterId>,
    /// Minimum number of samples for a method to be reported.
    pub min_samples: usize,
}

impl Default for MethodQuery {
    fn default() -> Self {
        MethodQuery {
            exclude_errors: true,
            intra_cluster_only: false,
            server_cluster: None,
            min_samples: MIN_SAMPLES,
        }
    }
}

impl MethodQuery {
    /// A query that keeps everything (for error accounting).
    pub fn unfiltered() -> Self {
        MethodQuery {
            exclude_errors: false,
            intra_cluster_only: false,
            server_cluster: None,
            min_samples: 1,
        }
    }

    /// Whether a span passes this query's filters.
    pub fn accepts(&self, span: &SpanRecord) -> bool {
        if self.exclude_errors && !span.is_ok() {
            return false;
        }
        if self.intra_cluster_only && span.client_cluster != span.server_cluster {
            return false;
        }
        if let Some(c) = self.server_cluster {
            if span.server_cluster != c {
                return false;
            }
        }
        true
    }

    /// Extracts a per-span metric for one method, or `None` if fewer than
    /// `min_samples` spans pass the filters.
    pub fn samples<F>(&self, store: &TraceStore, method: MethodId, f: F) -> Option<Vec<f64>>
    where
        F: Fn(&TraceData, &SpanRecord) -> f64,
    {
        let mut out = Vec::new();
        store.for_each_span(method, |trace, span| {
            if self.accepts(span) {
                out.push(f(trace, span));
            }
        });
        (out.len() >= self.min_samples).then_some(out)
    }

    /// Per-method completion-time samples in seconds.
    pub fn latency_samples(&self, store: &TraceStore, method: MethodId) -> Option<Vec<f64>> {
        self.samples(store, method, |_, s| s.total_latency().as_secs_f64())
    }

    /// Per-method samples of one latency component, in seconds.
    pub fn component_samples(
        &self,
        store: &TraceStore,
        method: MethodId,
        c: LatencyComponent,
    ) -> Option<Vec<f64>> {
        self.samples(store, method, move |_, s| s.component(c).as_secs_f64())
    }

    /// All methods that pass the sample-count filter, with their span
    /// counts, sorted by method id.
    pub fn eligible_methods(&self, store: &TraceStore) -> Vec<(MethodId, usize)> {
        let mut out: Vec<(MethodId, usize)> = store
            .methods()
            .filter_map(|m| {
                let mut n = 0usize;
                store.for_each_span(m, |_, s| {
                    if self.accepts(s) {
                        n += 1;
                    }
                });
                (n >= self.min_samples).then_some((m, n))
            })
            .collect();
        out.sort_by_key(|(m, _)| *m);
        out
    }
}

/// Per-method tree-shape samples (descendants and ancestors), computed
/// over whole traces in one pass.
#[derive(Debug, Default)]
pub struct TreeShapeSamples {
    /// Descendant counts per method.
    pub descendants: HashMap<MethodId, Vec<f64>>,
    /// Ancestor counts per method.
    pub ancestors: HashMap<MethodId, Vec<f64>>,
}

impl TreeShapeSamples {
    /// Computes shape samples across the whole store.
    pub fn compute(store: &TraceStore) -> Self {
        let mut out = TreeShapeSamples::default();
        for trace in store.traces() {
            let stats = TreeStats::compute(trace);
            for (i, span) in trace.spans.iter().enumerate() {
                out.descendants
                    .entry(span.method)
                    .or_default()
                    .push(stats.descendants[i] as f64);
                out.ancestors
                    .entry(span.method)
                    .or_default()
                    .push(stats.ancestors[i] as f64);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{ServiceId, SpanBuilder};
    use rpclens_rpcstack::component::LatencyBreakdown;
    use rpclens_rpcstack::error::ErrorKind;
    use rpclens_simcore::time::{SimDuration, SimTime};

    fn make_store() -> TraceStore {
        let mut store = TraceStore::new();
        for i in 0..150u64 {
            let mut b = LatencyBreakdown::new();
            b.set(
                LatencyComponent::ServerApplication,
                SimDuration::from_micros(1000 + i),
            );
            b.set(
                LatencyComponent::ServerRecvQueue,
                SimDuration::from_micros(10),
            );
            let mut builder = SpanBuilder::new(
                MethodId(1),
                ServiceId(0),
                ClusterId(0),
                ClusterId(if i % 3 == 0 { 0 } else { 1 }),
            )
            .breakdown(b);
            if i % 10 == 0 {
                builder = builder.error(ErrorKind::Unavailable);
            }
            let root = builder.build();
            let child = SpanBuilder::new(MethodId(2), ServiceId(0), ClusterId(1), ClusterId(1))
                .parent(0)
                .build();
            store.add(TraceData::new(SimTime::ZERO, vec![root, child]));
        }
        store
    }

    #[test]
    fn errors_are_excluded_by_default() {
        let store = make_store();
        let q = MethodQuery::default();
        let samples = q.latency_samples(&store, MethodId(1)).unwrap();
        assert_eq!(samples.len(), 135); // 150 minus 15 errors.
        let all = MethodQuery::unfiltered()
            .latency_samples(&store, MethodId(1))
            .unwrap();
        assert_eq!(all.len(), 150);
    }

    #[test]
    fn intra_cluster_filter_applies() {
        let store = make_store();
        let q = MethodQuery {
            intra_cluster_only: true,
            exclude_errors: false,
            min_samples: 1,
            ..MethodQuery::default()
        };
        let samples = q.latency_samples(&store, MethodId(1)).unwrap();
        assert_eq!(samples.len(), 50); // Every third span is same-cluster.
    }

    #[test]
    fn server_cluster_filter_applies() {
        let store = make_store();
        let q = MethodQuery {
            server_cluster: Some(ClusterId(1)),
            exclude_errors: false,
            min_samples: 1,
            ..MethodQuery::default()
        };
        let samples = q.latency_samples(&store, MethodId(1)).unwrap();
        assert_eq!(samples.len(), 100);
    }

    #[test]
    fn min_samples_gate_enforced() {
        let store = make_store();
        let q = MethodQuery {
            min_samples: 1000,
            ..MethodQuery::default()
        };
        assert!(q.latency_samples(&store, MethodId(1)).is_none());
    }

    #[test]
    fn component_samples_extract_one_component() {
        let store = make_store();
        let q = MethodQuery::default();
        let queue = q
            .component_samples(&store, MethodId(1), LatencyComponent::ServerRecvQueue)
            .unwrap();
        assert!(queue.iter().all(|&s| (s - 10e-6).abs() < 1e-9));
    }

    #[test]
    fn eligible_methods_sorted_and_counted() {
        let store = make_store();
        let q = MethodQuery::default();
        let methods = q.eligible_methods(&store);
        assert_eq!(methods.len(), 2);
        assert_eq!(methods[0].0, MethodId(1));
        assert_eq!(methods[0].1, 135);
        assert_eq!(methods[1].0, MethodId(2));
        assert_eq!(methods[1].1, 150);
    }

    #[test]
    fn tree_shape_samples_cover_all_spans() {
        let store = make_store();
        let shapes = TreeShapeSamples::compute(&store);
        assert_eq!(shapes.descendants[&MethodId(1)].len(), 150);
        assert!(shapes.descendants[&MethodId(1)].iter().all(|&d| d == 1.0));
        assert!(shapes.ancestors[&MethodId(2)].iter().all(|&a| a == 1.0));
    }
}
