//! Comparison call-graph generators for §2.4.
//!
//! The paper compares its tree-shape findings against three published
//! populations: Alibaba's microservice call graphs (Luo et al., SoCC'21),
//! Meta's request workflows (Huye et al., ATC'23), and the DeathStarBench
//! service graphs (Gan et al., ASPLOS'19). Each generator here produces
//! tree-size/depth samples with those studies' published shape parameters
//! so `repro compare` can regenerate the §2.4 comparison table.

use rpclens_simcore::rng::Prng;

/// A sampled call-tree shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeShape {
    /// Total RPCs in the tree, excluding the root.
    pub descendants: u32,
    /// Maximum depth (root = 0).
    pub depth: u32,
}

/// Which study's population to imitate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineKind {
    /// Alibaba microservices: heavy-tailed sizes, wider than deep,
    /// median depths ~3-5, sizes with a long tail into the thousands.
    Alibaba,
    /// Meta request workflows: P99 depth 5-6, max depth 9-19, median
    /// blocks per trace 2-498, P99 ~1k-10k.
    Meta,
    /// DeathStarBench: small fixed graphs, depth 3-9, 21-41 services.
    DeathStarBench,
}

impl BaselineKind {
    /// All baselines.
    pub const ALL: [BaselineKind; 3] = [
        BaselineKind::Alibaba,
        BaselineKind::Meta,
        BaselineKind::DeathStarBench,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            BaselineKind::Alibaba => "Alibaba (Luo et al.)",
            BaselineKind::Meta => "Meta (Huye et al.)",
            BaselineKind::DeathStarBench => "DeathStarBench (Gan et al.)",
        }
    }
}

/// Generates tree shapes for one baseline population.
#[derive(Debug)]
pub struct BaselineGenerator {
    kind: BaselineKind,
    rng: Prng,
}

impl BaselineGenerator {
    /// Creates a generator.
    pub fn new(kind: BaselineKind, seed: u64) -> Self {
        BaselineGenerator {
            kind,
            rng: Prng::seed_from(seed).stream(kind as u64 ^ 0xBA5E),
        }
    }

    /// The population kind.
    pub fn kind(&self) -> BaselineKind {
        self.kind
    }

    /// Samples one tree shape by expanding a branching process with the
    /// study's parameters.
    pub fn sample(&mut self) -> TreeShape {
        let (max_depth, p_leaf, fan_max, fan_alpha) = match self.kind {
            // Alibaba: heavy-tailed fan-out, shallow.
            BaselineKind::Alibaba => (7u32, 0.65, 20u32, 1.1),
            // Meta: similar depth, somewhat smaller bursts.
            BaselineKind::Meta => (8, 0.60, 24, 1.1),
            // DSB: small graphs, bounded fan-out.
            BaselineKind::DeathStarBench => (6, 0.42, 5, 1.4),
        };
        let mut descendants = 0u32;
        let mut deepest = 0u32;
        // Iterative expansion with an explicit frontier.
        let mut frontier = vec![0u32]; // Depths of nodes to expand.
        let cap = 20_000;
        while let Some(depth) = frontier.pop() {
            deepest = deepest.max(depth);
            if depth >= max_depth || descendants >= cap {
                continue;
            }
            if self.rng.chance(p_leaf) {
                continue;
            }
            // Bounded-Pareto fan-out on [1, fan_max].
            let u = self.rng.next_f64_open();
            let ha = (fan_max as f64).powf(fan_alpha);
            let k = ((1.0 - u * (1.0 - 1.0 / ha)).powf(-1.0 / fan_alpha) as u32).min(fan_max);
            for _ in 0..k {
                descendants += 1;
                frontier.push(depth + 1);
                if descendants >= cap {
                    break;
                }
            }
        }
        TreeShape {
            descendants,
            depth: deepest,
        }
    }

    /// Samples `n` shapes.
    pub fn sample_n(&mut self, n: usize) -> Vec<TreeShape> {
        (0..n).map(|_| self.sample()).collect()
    }
}

/// Shape summary statistics for a population.
#[derive(Debug, Clone, Copy)]
pub struct ShapeSummary {
    /// Median descendants.
    pub median_size: f64,
    /// 99th-percentile descendants.
    pub p99_size: f64,
    /// Median depth.
    pub median_depth: f64,
    /// 99th-percentile depth.
    pub p99_depth: f64,
    /// Maximum depth observed.
    pub max_depth: u32,
}

impl ShapeSummary {
    /// Summarises a sample of shapes.
    ///
    /// # Panics
    ///
    /// Panics if `shapes` is empty.
    pub fn from_shapes(shapes: &[TreeShape]) -> ShapeSummary {
        assert!(!shapes.is_empty(), "need at least one shape");
        let mut sizes: Vec<f64> = shapes.iter().map(|s| s.descendants as f64).collect();
        let mut depths: Vec<f64> = shapes.iter().map(|s| s.depth as f64).collect();
        sizes.sort_by(|a, b| a.partial_cmp(b).unwrap());
        depths.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let pct = |v: &[f64], q: f64| v[((v.len() - 1) as f64 * q) as usize];
        ShapeSummary {
            median_size: pct(&sizes, 0.5),
            p99_size: pct(&sizes, 0.99),
            median_depth: pct(&depths, 0.5),
            p99_depth: pct(&depths, 0.99),
            max_depth: shapes.iter().map(|s| s.depth).max().unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(kind: BaselineKind) -> ShapeSummary {
        let mut g = BaselineGenerator::new(kind, 1);
        ShapeSummary::from_shapes(&g.sample_n(20_000))
    }

    #[test]
    fn all_populations_are_wider_than_deep() {
        for kind in BaselineKind::ALL {
            let s = summary(kind);
            assert!(
                s.p99_size > s.p99_depth * 3.0,
                "{kind:?}: size P99 {} vs depth P99 {}",
                s.p99_size,
                s.p99_depth
            );
        }
    }

    #[test]
    fn meta_depths_match_published_ranges() {
        // Huye et al.: P99 depth 5-6, max depth 9-19.
        let s = summary(BaselineKind::Meta);
        assert!(
            (4.0..=8.0).contains(&s.p99_depth),
            "P99 depth {}",
            s.p99_depth
        );
        assert!(s.max_depth <= 19 && s.max_depth >= 7, "max {}", s.max_depth);
    }

    #[test]
    fn dsb_graphs_are_small() {
        // Gan et al.: tens of services per application.
        let s = summary(BaselineKind::DeathStarBench);
        assert!(s.p99_size < 120.0, "P99 size {}", s.p99_size);
        assert!(s.p99_depth <= 6.0, "P99 depth {}", s.p99_depth);
    }

    #[test]
    fn alibaba_has_heavy_size_tail() {
        // Luo et al.: a heavy tail many times the median.
        let s = summary(BaselineKind::Alibaba);
        assert!(
            s.p99_size > s.median_size.max(1.0) * 10.0,
            "median {} p99 {}",
            s.median_size,
            s.p99_size
        );
    }

    #[test]
    fn generator_is_deterministic() {
        let mut a = BaselineGenerator::new(BaselineKind::Alibaba, 9);
        let mut b = BaselineGenerator::new(BaselineKind::Alibaba, 9);
        assert_eq!(a.sample_n(100), b.sample_n(100));
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::BTreeSet<_> =
            BaselineKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), 3);
    }
}
