//! Fig. 21: per-method RPC CPU cycles (normalized across CPU
//! generations).
//!
//! Paper anchors: per-method CPU cost is heavy-tailed — P99 costs run
//! one-to-two orders of magnitude above the median for almost all
//! methods; cheap methods have low variance; and *neither RPC size nor
//! RPC latency predicts CPU cost*, which is what makes cost-aware load
//! balancing hard (§4.2).

use crate::check::ExpectationSet;
use crate::common::{paper_query, MethodHeatmap};
use crate::render::{sketch_cdf, TextTable};
use rpclens_fleet::driver::FleetRun;
use rpclens_simcore::stats::spearman;
use rpclens_trace::span::MethodId;

/// The computed figure.
#[derive(Debug)]
pub struct Fig21 {
    /// Per-method normalized-cycle quantiles, sorted by median.
    pub heatmap: MethodHeatmap,
    /// Across methods: Spearman correlation of median cycles vs median
    /// latency.
    pub cycles_latency_correlation: f64,
    /// Across methods: Spearman correlation of median cycles vs median
    /// request size.
    pub cycles_size_correlation: f64,
}

/// Computes the figure from the profiler's per-method samples.
pub fn compute(run: &FleetRun) -> Fig21 {
    let methods = run.profiler.methods_with_samples(100);
    let samples: Vec<(MethodId, Vec<f64>)> = methods
        .iter()
        .map(|&m| (MethodId(m), run.profiler.method_samples(m)))
        .collect();
    let heatmap = MethodHeatmap::from_samples(samples, 100);

    // Cross-method correlations against latency and size.
    let query = paper_query();
    let latency = MethodHeatmap::build(run, &query, |_, s| s.total_latency().as_secs_f64());
    let sizes = MethodHeatmap::build(run, &query, |_, s| s.request_bytes as f64);
    let mut cyc = Vec::new();
    let mut lat = Vec::new();
    let mut sz = Vec::new();
    for row in &heatmap.rows {
        let l = latency.rows.iter().find(|r| r.method == row.method);
        let s = sizes.rows.iter().find(|r| r.method == row.method);
        if let (Some(l), Some(s)) = (l, s) {
            cyc.push(row.summary.p50);
            lat.push(l.summary.p50);
            sz.push(s.summary.p50);
        }
    }
    Fig21 {
        cycles_latency_correlation: spearman(&cyc, &lat).unwrap_or(f64::NAN),
        cycles_size_correlation: spearman(&cyc, &sz).unwrap_or(f64::NAN),
        heatmap,
    }
}

/// Renders the figure.
pub fn render(fig: &Fig21) -> String {
    let hm = &fig.heatmap;
    let mut t = TextTable::new(&["method#", "P50 kcycles", "P90 kcycles", "P99 kcycles"]);
    let step = (hm.len() / 15).max(1);
    for (i, row) in hm.rows.iter().enumerate().step_by(step) {
        t.row(vec![
            i.to_string(),
            format!("{:.0}", row.summary.p50 / 1e3),
            format!("{:.0}", row.summary.p90 / 1e3),
            format!("{:.0}", row.summary.p99 / 1e3),
        ]);
    }
    format!(
        "Fig. 21 — Per-method normalized CPU cycles ({} methods)\n{}\n\
         cycles-latency spearman {:+.3}, cycles-size spearman {:+.3}\n\
         CDF of per-method median cycles:\n{}",
        hm.len(),
        t.render(),
        fig.cycles_latency_correlation,
        fig.cycles_size_correlation,
        sketch_cdf(&hm.across_methods(0.5), |v| format!("{:.0}k", v / 1e3)),
    )
}

/// Paper-vs-measured checks.
pub fn checks(fig: &Fig21) -> ExpectationSet {
    let hm = &fig.heatmap;
    let mut s = ExpectationSet::new();
    // Heavy per-method tails: P99 an order of magnitude above median for
    // most methods.
    let heavy = hm
        .rows
        .iter()
        .filter(|r| r.summary.p99 > r.summary.p50.max(1.0) * 5.0)
        .count() as f64
        / hm.rows.len().max(1) as f64;
    s.add(
        "fig21.heavy_tail",
        "P99 costs are 1-2 orders of magnitude above the median",
        heavy,
        0.4,
        1.0,
    );
    // Cheap methods vary less than expensive ones.
    let cheap_ratio = hm
        .rows
        .first()
        .map(|r| r.summary.p99 / r.summary.p50.max(1.0))
        .unwrap_or(f64::NAN);
    let expensive_ratio = hm
        .rows
        .last()
        .map(|r| r.summary.p99 / r.summary.p50.max(1.0))
        .unwrap_or(f64::NAN);
    s.add(
        "fig21.cheap_low_variance",
        "the cheapest methods have low variance",
        cheap_ratio,
        1.0,
        20.0,
    );
    let _ = expensive_ratio;
    // No strong correlation between CPU cost and latency or size.
    s.add(
        "fig21.latency_uncorrelated",
        "RPC latency does not predict RPC CPU cost",
        fig.cycles_latency_correlation.abs(),
        0.0,
        0.65,
    );
    s.add(
        "fig21.size_uncorrelated",
        "RPC size does not predict RPC CPU cost",
        fig.cycles_size_correlation.abs(),
        0.0,
        0.65,
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testrun::shared;

    #[test]
    fn checks_pass_on_test_run() {
        let fig = compute(shared());
        let c = checks(&fig);
        assert!(c.all_passed(), "{c}");
    }

    #[test]
    fn many_methods_are_annotated() {
        let fig = compute(shared());
        assert!(fig.heatmap.len() > 20, "{}", fig.heatmap.len());
    }

    #[test]
    fn compute_services_cost_more_than_storage() {
        let run = shared();
        let fig = compute(run);
        let median_of = |name: &str| -> f64 {
            let svc = run.catalog.service_by_name(name).unwrap().id;
            let rows: Vec<f64> = fig
                .heatmap
                .rows
                .iter()
                .filter(|r| run.catalog.method(r.method).service == svc)
                .map(|r| r.summary.p50)
                .collect();
            rows.iter().sum::<f64>() / rows.len().max(1) as f64
        };
        assert!(median_of("MLInference") > median_of("NetworkDisk") * 3.0);
    }
}
