//! Call-graph shapes across studies: the §2.4 comparison, standalone.
//!
//! Generates tree-shape populations with the published parameters of the
//! Alibaba, Meta, and DeathStarBench studies, measures this fleet's
//! shapes from a simulation, and prints the comparison table — wider than
//! deep, everywhere.
//!
//! ```text
//! cargo run --release --example callgraph_shapes
//! ```

use rpclens::core::figs::compare;
use rpclens::fleet::baselines::{BaselineGenerator, BaselineKind};
use rpclens::prelude::*;

fn main() {
    let run = run_fleet(FleetConfig::at_scale(SimScale::smoke()));
    let cmp = compare::compute(&run);
    println!("{}", compare::render(&cmp));

    // Depth histograms per baseline: the "deep" dimension barely moves
    // across three very different systems.
    println!("depth distribution per population (20k samples each):");
    for kind in BaselineKind::ALL {
        let mut g = BaselineGenerator::new(kind, 7);
        let mut hist = [0u32; 24];
        for shape in g.sample_n(20_000) {
            hist[(shape.depth as usize).min(23)] += 1;
        }
        let render: String = hist
            .iter()
            .take(12)
            .map(|&c| {
                let h = (c as f64 / 20_000.0 * 50.0) as usize;
                if h > 0 {
                    '#'
                } else {
                    '.'
                }
            })
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join("");
        println!("  {:>28}: depths 0-11 [{render}]", kind.label());
    }

    let checks = compare::checks(&cmp);
    println!("\n{checks}");
}
