/root/repo/target/debug/deps/rpclens_trace-6a6f4d643b974aa1.d: crates/trace/src/lib.rs crates/trace/src/collector.rs crates/trace/src/critical_path.rs crates/trace/src/export.rs crates/trace/src/query.rs crates/trace/src/span.rs crates/trace/src/tree.rs

/root/repo/target/debug/deps/librpclens_trace-6a6f4d643b974aa1.rlib: crates/trace/src/lib.rs crates/trace/src/collector.rs crates/trace/src/critical_path.rs crates/trace/src/export.rs crates/trace/src/query.rs crates/trace/src/span.rs crates/trace/src/tree.rs

/root/repo/target/debug/deps/librpclens_trace-6a6f4d643b974aa1.rmeta: crates/trace/src/lib.rs crates/trace/src/collector.rs crates/trace/src/critical_path.rs crates/trace/src/export.rs crates/trace/src/query.rs crates/trace/src/span.rs crates/trace/src/tree.rs

crates/trace/src/lib.rs:
crates/trace/src/collector.rs:
crates/trace/src/critical_path.rs:
crates/trace/src/export.rs:
crates/trace/src/query.rs:
crates/trace/src/span.rs:
crates/trace/src/tree.rs:
