//! Workload generation: diurnal root-RPC arrivals and entry selection.
//!
//! Root RPCs arrive open-loop with a diurnal intensity (the fleet is
//! busier in the working day, Fig. 18), and each root picks an entry
//! method from the catalog's root weights and a client cluster from the
//! method's service deployment plus external-traffic spread.

use crate::catalog::Catalog;
use rpclens_netsim::topology::{ClusterId, Topology};
use rpclens_simcore::alias::AliasTable;
use rpclens_simcore::rng::Prng;
use rpclens_simcore::time::{SimDuration, SimTime};
use rpclens_trace::span::MethodId;

/// A generated root arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RootArrival {
    /// When the root RPC is issued.
    pub at: SimTime,
    /// The entry method.
    pub method: MethodId,
    /// The cluster the client runs in.
    pub client_cluster: ClusterId,
}

/// The workload generator.
#[derive(Debug)]
pub struct Workload {
    entry_methods: Vec<MethodId>,
    entry_table: AliasTable,
    client_clusters: Vec<Vec<ClusterId>>,
    duration: SimDuration,
    peak_hour: f64,
    rng: Prng,
}

impl Workload {
    /// Builds a workload over `duration` from the catalog's root weights.
    ///
    /// # Panics
    ///
    /// Panics if the catalog has no method with a positive root weight or
    /// the duration is zero.
    pub fn new(catalog: &Catalog, topology: &Topology, duration: SimDuration, seed: u64) -> Self {
        assert!(duration.as_nanos() > 0, "duration must be positive");
        let entries: Vec<(MethodId, f64)> = catalog
            .methods()
            .iter()
            .filter(|m| m.root_weight > 0.0)
            .map(|m| (m.id, m.root_weight))
            .collect();
        assert!(!entries.is_empty(), "catalog has no entry methods");
        let weights: Vec<f64> = entries.iter().map(|(_, w)| *w).collect();
        let entry_table = AliasTable::new(&weights).expect("positive weights");
        let entry_methods: Vec<MethodId> = entries.iter().map(|(m, _)| *m).collect();
        // Client clusters per entry: the service's own clusters (a client
        // stub runs next to the caller) — roots can start anywhere the
        // entry service is deployed.
        let client_clusters = entry_methods
            .iter()
            .map(|&m| catalog.service(catalog.method(m).service).clusters.clone())
            .collect();
        let _ = topology;
        Workload {
            entry_methods,
            entry_table,
            client_clusters,
            duration,
            peak_hour: 14.0,
            rng: Prng::seed_from(seed).stream(0x0307_0AD5),
        }
    }

    /// The diurnal intensity multiplier at `t` (mean 1.0 over a day).
    pub fn intensity(&self, t: SimTime) -> f64 {
        let hour = (t.as_secs_f64() / 3600.0) % 24.0;
        1.0 + 0.45 * (std::f64::consts::TAU * (hour - self.peak_hour + 6.0) / 24.0).sin()
    }

    /// Generates `n` root arrivals over the workload duration, sorted by
    /// time, thinning a uniform proposal by the diurnal intensity.
    pub fn generate(&mut self, n: u64) -> Vec<RootArrival> {
        let mut out = Vec::with_capacity(n as usize);
        let span_ns = self.duration.as_nanos();
        let max_intensity = 1.45;
        while (out.len() as u64) < n {
            let t = SimTime::from_nanos(self.rng.next_below(span_ns));
            // Rejection-sample against the diurnal curve.
            if self.rng.next_f64() * max_intensity > self.intensity(t) {
                continue;
            }
            let e = self.entry_table.sample(&mut self.rng);
            let clusters = &self.client_clusters[e];
            let client_cluster = *self.rng.choose(clusters);
            out.push(RootArrival {
                at: t,
                method: self.entry_methods[e],
                client_cluster,
            });
        }
        out.sort_by_key(|r| r.at);
        out
    }

    /// The workload duration.
    pub fn duration(&self) -> SimDuration {
        self.duration
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CatalogConfig;
    use rpclens_netsim::topology::Topology;

    fn setup() -> (Catalog, Topology) {
        let topo = Topology::default_world(3);
        let cat = Catalog::generate(
            &CatalogConfig {
                total_methods: 400,
                seed: 3,
            },
            &topo,
        );
        (cat, topo)
    }

    #[test]
    fn generates_sorted_arrivals_in_range() {
        let (cat, topo) = setup();
        let dur = SimDuration::from_hours(24);
        let mut w = Workload::new(&cat, &topo, dur, 1);
        let roots = w.generate(10_000);
        assert_eq!(roots.len(), 10_000);
        assert!(roots.windows(2).all(|p| p[0].at <= p[1].at));
        assert!(roots.iter().all(|r| r.at.as_nanos() < dur.as_nanos()));
    }

    #[test]
    fn arrivals_follow_diurnal_shape() {
        let (cat, topo) = setup();
        let mut w = Workload::new(&cat, &topo, SimDuration::from_hours(24), 2);
        let roots = w.generate(120_000);
        // Compare arrivals in the peak hour window vs the trough.
        let count_in = |h0: f64, h1: f64| {
            roots
                .iter()
                .filter(|r| {
                    let h = r.at.as_secs_f64() / 3600.0;
                    h >= h0 && h < h1
                })
                .count() as f64
        };
        let peak = count_in(12.0, 16.0);
        let trough = count_in(0.0, 4.0);
        assert!(peak > trough * 1.5, "peak {peak}, trough {trough}");
    }

    #[test]
    fn entry_mix_respects_weights() {
        let (cat, topo) = setup();
        let mut w = Workload::new(&cat, &topo, SimDuration::from_hours(1), 3);
        let roots = w.generate(50_000);
        // The heaviest root method (Network Disk Write, weight 300) must
        // be the most common entry.
        let mut counts = std::collections::HashMap::new();
        for r in &roots {
            *counts.entry(r.method).or_insert(0u32) += 1;
        }
        let (&top, &top_count) = counts.iter().max_by_key(|(_, &c)| c).unwrap();
        let spec = cat.method(top);
        assert_eq!(cat.service(spec.service).name, "NetworkDisk");
        assert!(top_count as f64 / roots.len() as f64 > 0.2);
    }

    #[test]
    fn client_clusters_are_deployment_clusters() {
        let (cat, topo) = setup();
        let mut w = Workload::new(&cat, &topo, SimDuration::from_hours(1), 4);
        for r in w.generate(2_000) {
            let svc = cat.service(cat.method(r.method).service);
            assert!(svc.clusters.contains(&r.client_cluster));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (cat, topo) = setup();
        let mut w1 = Workload::new(&cat, &topo, SimDuration::from_hours(2), 9);
        let mut w2 = Workload::new(&cat, &topo, SimDuration::from_hours(2), 9);
        assert_eq!(w1.generate(1000), w2.generate(1000));
    }

    #[test]
    fn intensity_averages_to_one() {
        let (cat, topo) = setup();
        let w = Workload::new(&cat, &topo, SimDuration::from_hours(24), 5);
        let mean: f64 = (0..24 * 60)
            .map(|m| w.intensity(SimTime::ZERO + SimDuration::from_mins(m)))
            .sum::<f64>()
            / (24.0 * 60.0);
        assert!((mean - 1.0).abs() < 0.01, "mean intensity {mean}");
    }
}
