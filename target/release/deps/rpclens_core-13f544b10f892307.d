/root/repo/target/release/deps/rpclens_core-13f544b10f892307.d: crates/core/src/lib.rs crates/core/src/check.rs crates/core/src/common.rs crates/core/src/figs/mod.rs crates/core/src/figs/compare.rs crates/core/src/figs/fig01.rs crates/core/src/figs/fig02.rs crates/core/src/figs/fig03.rs crates/core/src/figs/fig04.rs crates/core/src/figs/fig05.rs crates/core/src/figs/fig06.rs crates/core/src/figs/fig07.rs crates/core/src/figs/fig08.rs crates/core/src/figs/fig10.rs crates/core/src/figs/fig11.rs crates/core/src/figs/fig12.rs crates/core/src/figs/fig13.rs crates/core/src/figs/fig14.rs crates/core/src/figs/fig15.rs crates/core/src/figs/fig16.rs crates/core/src/figs/fig17.rs crates/core/src/figs/fig18.rs crates/core/src/figs/fig19.rs crates/core/src/figs/fig20.rs crates/core/src/figs/fig21.rs crates/core/src/figs/fig22.rs crates/core/src/figs/fig23.rs crates/core/src/figs/table1.rs crates/core/src/figs/table2.rs crates/core/src/render.rs crates/core/src/whatif.rs

/root/repo/target/release/deps/librpclens_core-13f544b10f892307.rlib: crates/core/src/lib.rs crates/core/src/check.rs crates/core/src/common.rs crates/core/src/figs/mod.rs crates/core/src/figs/compare.rs crates/core/src/figs/fig01.rs crates/core/src/figs/fig02.rs crates/core/src/figs/fig03.rs crates/core/src/figs/fig04.rs crates/core/src/figs/fig05.rs crates/core/src/figs/fig06.rs crates/core/src/figs/fig07.rs crates/core/src/figs/fig08.rs crates/core/src/figs/fig10.rs crates/core/src/figs/fig11.rs crates/core/src/figs/fig12.rs crates/core/src/figs/fig13.rs crates/core/src/figs/fig14.rs crates/core/src/figs/fig15.rs crates/core/src/figs/fig16.rs crates/core/src/figs/fig17.rs crates/core/src/figs/fig18.rs crates/core/src/figs/fig19.rs crates/core/src/figs/fig20.rs crates/core/src/figs/fig21.rs crates/core/src/figs/fig22.rs crates/core/src/figs/fig23.rs crates/core/src/figs/table1.rs crates/core/src/figs/table2.rs crates/core/src/render.rs crates/core/src/whatif.rs

/root/repo/target/release/deps/librpclens_core-13f544b10f892307.rmeta: crates/core/src/lib.rs crates/core/src/check.rs crates/core/src/common.rs crates/core/src/figs/mod.rs crates/core/src/figs/compare.rs crates/core/src/figs/fig01.rs crates/core/src/figs/fig02.rs crates/core/src/figs/fig03.rs crates/core/src/figs/fig04.rs crates/core/src/figs/fig05.rs crates/core/src/figs/fig06.rs crates/core/src/figs/fig07.rs crates/core/src/figs/fig08.rs crates/core/src/figs/fig10.rs crates/core/src/figs/fig11.rs crates/core/src/figs/fig12.rs crates/core/src/figs/fig13.rs crates/core/src/figs/fig14.rs crates/core/src/figs/fig15.rs crates/core/src/figs/fig16.rs crates/core/src/figs/fig17.rs crates/core/src/figs/fig18.rs crates/core/src/figs/fig19.rs crates/core/src/figs/fig20.rs crates/core/src/figs/fig21.rs crates/core/src/figs/fig22.rs crates/core/src/figs/fig23.rs crates/core/src/figs/table1.rs crates/core/src/figs/table2.rs crates/core/src/render.rs crates/core/src/whatif.rs

crates/core/src/lib.rs:
crates/core/src/check.rs:
crates/core/src/common.rs:
crates/core/src/figs/mod.rs:
crates/core/src/figs/compare.rs:
crates/core/src/figs/fig01.rs:
crates/core/src/figs/fig02.rs:
crates/core/src/figs/fig03.rs:
crates/core/src/figs/fig04.rs:
crates/core/src/figs/fig05.rs:
crates/core/src/figs/fig06.rs:
crates/core/src/figs/fig07.rs:
crates/core/src/figs/fig08.rs:
crates/core/src/figs/fig10.rs:
crates/core/src/figs/fig11.rs:
crates/core/src/figs/fig12.rs:
crates/core/src/figs/fig13.rs:
crates/core/src/figs/fig14.rs:
crates/core/src/figs/fig15.rs:
crates/core/src/figs/fig16.rs:
crates/core/src/figs/fig17.rs:
crates/core/src/figs/fig18.rs:
crates/core/src/figs/fig19.rs:
crates/core/src/figs/fig20.rs:
crates/core/src/figs/fig21.rs:
crates/core/src/figs/fig22.rs:
crates/core/src/figs/fig23.rs:
crates/core/src/figs/table1.rs:
crates/core/src/figs/table2.rs:
crates/core/src/render.rs:
crates/core/src/whatif.rs:
