//! The fault-injection plane: named scenarios and the per-shard plane
//! that answers "is this entity failed right now?".
//!
//! A [`FaultScenario`] names which failure sources are active and how
//! intense they are; [`FaultPlane`] materialises it as lazily-built
//! [`EpisodeProcess`] trajectories keyed by entity (machine, cluster, WAN
//! cluster pair, or deployment site). Both halves are deterministic:
//! entity eligibility and episode trajectories derive from the master
//! seed via labelled [`Prng`] streams and never consume caller draws, so
//! every simulation shard reconstructs identical failure timelines and
//! fault-injected runs stay bit-identical at any shard count (the same
//! contract `CongestionProcess` gives the network layer).
//!
//! The scenario also carries the *client-side response* to failures: the
//! deadline-draw range and the retry/backoff/budget configuration the
//! driver's resilience loop executes. See `docs/ROBUSTNESS.md`.

use crate::control::{AdmissionSpec, AutoscalerSpec, ControlSpec};
use crate::incident::IncidentSpec;
use rpclens_cluster::faults::{EpisodeParams, EpisodeProcess};
use rpclens_netsim::congestion::CongestionParams;
use rpclens_rpcstack::deadline::DeadlinePolicy;
use rpclens_rpcstack::error::ErrorProfile;
use rpclens_rpcstack::retry::BackoffPolicy;
use rpclens_simcore::rng::Prng;
use rpclens_simcore::time::{SimDuration, SimTime};
use std::collections::HashMap;

/// One failure source: which fraction of entities it can strike, and the
/// episode process governing each eligible entity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpisodeSpec {
    /// Fraction of entities eligible for this failure source (the
    /// eligibility draw is deterministic per entity).
    pub eligible: f64,
    /// Episode process parameters for each eligible entity.
    pub params: EpisodeParams,
}

/// WAN partition source: eligible cluster pairs alternate between full
/// blackouts (targets unreachable) and brownouts (excess wire latency).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionSpec {
    /// Pair eligibility and episode process.
    pub episodes: EpisodeSpec,
    /// Excess one-way latency added during a brownout episode.
    pub brownout_excess: SimDuration,
}

impl PartitionSpec {
    /// Derives the brownout excess from the WAN congestion process
    /// instead of picking a fixed number: a brownout pins the path in
    /// its busy (congested) state, so each crossing gains the busy-state
    /// mean excess (`CongestionParams::congested_mean_excess_secs`)
    /// weighted by the residence the pin *adds* over the path's normal
    /// duty cycle, times the scenario's severity factor. At severity 2
    /// this lands within a millisecond of the old fixed 30 ms, but now
    /// tracks the congestion model if its parameters move.
    pub fn wan_derived(episodes: EpisodeSpec, severity: f64) -> Self {
        let wan = CongestionParams::wan();
        let added_residence = 1.0 - wan.congested_duty_cycle();
        let excess = wan.congested_mean_excess_secs() * added_residence * severity;
        PartitionSpec {
            episodes,
            brownout_excess: SimDuration::from_secs_f64(excess),
        }
    }
}

/// CPU-overload source: eligible deployment sites see their ambient
/// utilization surge, and queue waits beyond the shed threshold are
/// rejected with `NoResource` (load shedding).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverloadSpec {
    /// Site eligibility and surge episode process.
    pub episodes: EpisodeSpec,
    /// Multiplier applied to the site's ambient utilization during a
    /// surge (the result is clamped below saturation).
    pub util_factor: f64,
    /// Queue waits above this threshold are load-shed while surging.
    pub shed_wait: SimDuration,
}

/// Deadline behaviour: roots draw a log-uniform deadline budget and
/// children inherit the remainder per [`DeadlinePolicy`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadlineSpec {
    /// Smallest root budget drawn.
    pub min_budget: SimDuration,
    /// Largest root budget drawn.
    pub max_budget: SimDuration,
    /// Propagation policy (hop margin, fail-fast floor).
    pub policy: DeadlinePolicy,
    /// Draw each root's budget from its entry method's *own* latency
    /// quantiles instead of the one global log-uniform range: the band
    /// is `[q50 × lo, q99 × hi]` of the method's compute distribution,
    /// with per-service-family headroom multipliers (latency-sensitive
    /// families get tight budgets, batch families loose ones), clamped
    /// to `[min_budget, max_budget]`. Still exactly one draw per root.
    pub per_family: bool,
}

/// Client retry behaviour: jittered exponential backoff gated by a
/// per-trace token-bucket `RetryBudget`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetrySpec {
    /// Backoff policy (base, multiplier, cap, max attempts).
    pub backoff: BackoffPolicy,
    /// Tokens earned per successful call (`RetryBudget` ratio).
    pub budget_ratio: f64,
    /// Burst capacity of the per-trace budget (`RetryBudget` cap).
    pub budget_cap: f64,
}

/// A named fault scenario: which failure sources run and how clients
/// respond. `FaultScenario::none()` disables everything and is the
/// default — under it the driver's draw sequence is byte-identical to a
/// build without the fault plane, preserving the golden manifest digest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultScenario {
    /// Preset name (recorded in the run manifest).
    pub name: &'static str,
    /// Machine crash/restart churn (tasks `Unavailable` while down).
    pub machine_crash: Option<EpisodeSpec>,
    /// Whole-cluster drains (every site in the cluster `Unavailable`).
    pub cluster_drain: Option<EpisodeSpec>,
    /// WAN partitions/brownouts per cluster pair.
    pub wan_partition: Option<PartitionSpec>,
    /// CPU-overload surges with load shedding.
    pub overload: Option<OverloadSpec>,
    /// Root deadline draws and propagation.
    pub deadlines: Option<DeadlineSpec>,
    /// Client retries with budget and failover.
    pub retry: Option<RetrySpec>,
    /// Correlated cross-entity incidents (`crate::incident`): cluster
    /// drains surging their placement neighbours, region-pair WAN cuts,
    /// regional overload fronts.
    pub incidents: Option<IncidentSpec>,
    /// Closed-loop controllers (`crate::control`): autoscaler,
    /// load-balancer weight shift, bounded admission queues.
    pub control: Option<ControlSpec>,
}

impl FaultScenario {
    /// Every preset name accepted by [`FaultScenario::by_name`].
    pub const PRESETS: [&'static str; 6] = [
        "none",
        "chaos-smoke",
        "partition",
        "overload-collapse",
        "incident-smoke",
        "incident-open-loop",
    ];

    /// No faults at all; the pre-fault-plane simulator, bit for bit.
    pub fn none() -> Self {
        FaultScenario {
            name: "none",
            machine_crash: None,
            cluster_drain: None,
            wan_partition: None,
            overload: None,
            deadlines: None,
            retry: None,
            incidents: None,
            control: None,
        }
    }

    /// A little of everything, tuned so the aggregate error taxonomy
    /// still reconciles with Fig. 23 (cancellations lead, total error
    /// rate near 2%): rare machine crashes, an occasional cluster drain,
    /// WAN partition/brownout episodes, mild overload surges, drawn
    /// deadlines, and budgeted retries with failover.
    pub fn chaos_smoke() -> Self {
        FaultScenario {
            name: "chaos-smoke",
            machine_crash: Some(EpisodeSpec {
                eligible: 0.30,
                params: EpisodeParams {
                    up_mean: SimDuration::from_hours(6),
                    down_mean: SimDuration::from_secs(300),
                },
            }),
            cluster_drain: Some(EpisodeSpec {
                eligible: 0.10,
                params: EpisodeParams {
                    up_mean: SimDuration::from_hours(12),
                    down_mean: SimDuration::from_secs(900),
                },
            }),
            // Brownout severity 2x the WAN busy-state mean excess —
            // within a millisecond of the old fixed 30 ms, but derived.
            wan_partition: Some(PartitionSpec::wan_derived(
                EpisodeSpec {
                    eligible: 0.20,
                    params: EpisodeParams {
                        up_mean: SimDuration::from_hours(4),
                        down_mean: SimDuration::from_secs(180),
                    },
                },
                2.0,
            )),
            overload: Some(OverloadSpec {
                episodes: EpisodeSpec {
                    eligible: 0.10,
                    params: EpisodeParams {
                        up_mean: SimDuration::from_hours(6),
                        down_mean: SimDuration::from_secs(600),
                    },
                },
                util_factor: 1.6,
                shed_wait: SimDuration::from_millis(30),
            }),
            deadlines: Some(DeadlineSpec {
                min_budget: SimDuration::from_millis(250),
                max_budget: SimDuration::from_secs(30),
                policy: DeadlinePolicy::default(),
                per_family: true,
            }),
            retry: Some(RetrySpec {
                backoff: BackoffPolicy::default(),
                budget_ratio: 0.2,
                budget_cap: 2.0,
            }),
            incidents: None,
            control: None,
        }
    }

    /// WAN-focused scenario: frequent partition/brownout episodes across
    /// many cluster pairs, with deadlines and budgeted retries but no
    /// machine churn or overload.
    pub fn partition() -> Self {
        FaultScenario {
            name: "partition",
            machine_crash: None,
            cluster_drain: None,
            // Severity 4x: a WAN-stress scenario browns out at about
            // twice the balanced chaos preset's derived excess.
            wan_partition: Some(PartitionSpec::wan_derived(
                EpisodeSpec {
                    eligible: 0.60,
                    params: EpisodeParams {
                        up_mean: SimDuration::from_secs(5_400),
                        down_mean: SimDuration::from_secs(240),
                    },
                },
                4.0,
            )),
            overload: None,
            deadlines: Some(DeadlineSpec {
                min_budget: SimDuration::from_millis(50),
                max_budget: SimDuration::from_secs(5),
                policy: DeadlinePolicy::default(),
                per_family: false,
            }),
            retry: Some(RetrySpec {
                backoff: BackoffPolicy::default(),
                budget_ratio: 0.2,
                budget_cap: 2.0,
            }),
            incidents: None,
            control: None,
        }
    }

    /// The metastable-overload / retry-storm scenario: long, widespread
    /// CPU surges with aggressive load shedding. The tight per-trace
    /// retry budget (ratio 0.1, burst 1) is what keeps the retry storm
    /// clamped — the `retry-storm` detector verifies the amplification
    /// stays below the configured ratio.
    pub fn overload_collapse() -> Self {
        FaultScenario {
            name: "overload-collapse",
            machine_crash: None,
            cluster_drain: None,
            wan_partition: None,
            overload: Some(OverloadSpec {
                episodes: EpisodeSpec {
                    eligible: 0.50,
                    params: EpisodeParams {
                        up_mean: SimDuration::from_hours(2),
                        down_mean: SimDuration::from_secs(1_800),
                    },
                },
                util_factor: 2.2,
                shed_wait: SimDuration::from_millis(15),
            }),
            deadlines: Some(DeadlineSpec {
                min_budget: SimDuration::from_millis(50),
                max_budget: SimDuration::from_secs(10),
                policy: DeadlinePolicy::default(),
                per_family: false,
            }),
            retry: Some(RetrySpec {
                backoff: BackoffPolicy::default(),
                budget_ratio: 0.1,
                budget_cap: 1.0,
            }),
            incidents: None,
            control: None,
        }
    }

    /// The correlated-incident scenario with the fleet fighting back:
    /// cluster drains that surge their same-region neighbours, region-
    /// pair WAN cuts, and regional overload fronts, against an
    /// autoscaler, load-balancer weight shifts, and bounded admission
    /// queues. The digest-pinned companion to `chaos-smoke` for the
    /// incident layer (crates/bench/INCIDENT_SMOKE_DIGEST).
    pub fn incident_smoke() -> Self {
        FaultScenario {
            name: "incident-smoke",
            machine_crash: None,
            cluster_drain: None,
            wan_partition: None,
            overload: None,
            deadlines: Some(DeadlineSpec {
                min_budget: SimDuration::from_millis(50),
                max_budget: SimDuration::from_secs(10),
                policy: DeadlinePolicy::default(),
                per_family: true,
            }),
            retry: Some(RetrySpec {
                backoff: BackoffPolicy::default(),
                budget_ratio: 0.2,
                budget_cap: 2.0,
            }),
            incidents: Some(IncidentSpec {
                drain: Some(EpisodeSpec {
                    eligible: 0.30,
                    params: EpisodeParams {
                        up_mean: SimDuration::from_hours(8),
                        down_mean: SimDuration::from_secs(2_700),
                    },
                }),
                surge_factor: 1.8,
                wan_cut: Some(PartitionSpec::wan_derived(
                    EpisodeSpec {
                        eligible: 0.60,
                        params: EpisodeParams {
                            up_mean: SimDuration::from_hours(6),
                            down_mean: SimDuration::from_secs(1_800),
                        },
                    },
                    2.0,
                )),
                front: Some(OverloadSpec {
                    episodes: EpisodeSpec {
                        eligible: 0.75,
                        params: EpisodeParams {
                            up_mean: SimDuration::from_hours(5),
                            down_mean: SimDuration::from_hours(2),
                        },
                    },
                    util_factor: 2.0,
                    shed_wait: SimDuration::from_millis(15),
                }),
            }),
            control: Some(ControlSpec {
                autoscaler: Some(AutoscalerSpec {
                    sustain_windows: 2,
                    step: 0.25,
                    max_factor: 2.5,
                }),
                lb_shift: true,
                admission: Some(AdmissionSpec {
                    shed_wait: SimDuration::from_millis(15),
                    abandon_wait: SimDuration::from_millis(60),
                    util_cap: 0.96,
                }),
            }),
        }
    }

    /// The same incident schedule as [`FaultScenario::incident_smoke`]
    /// with every controller disabled — the open-loop baseline the
    /// closed- vs open-loop comparison (and `docs/ROBUSTNESS.md`'s
    /// table) measures against. Incident trajectories depend only on
    /// `(seed, incident spec)`, so the two scenarios see bit-identical
    /// incident timelines.
    pub fn incident_open_loop() -> Self {
        FaultScenario {
            name: "incident-open-loop",
            control: None,
            ..Self::incident_smoke()
        }
    }

    /// Resolves a preset by name.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "none" => Some(Self::none()),
            "chaos-smoke" => Some(Self::chaos_smoke()),
            "partition" => Some(Self::partition()),
            "overload-collapse" => Some(Self::overload_collapse()),
            "incident-smoke" => Some(Self::incident_smoke()),
            "incident-open-loop" => Some(Self::incident_open_loop()),
            _ => None,
        }
    }

    /// Whether this scenario is expected to reconcile with the paper's
    /// Fig. 23 error taxonomy. Only the balanced default chaos preset
    /// makes that promise; `partition` and `overload-collapse` are
    /// stress scenarios whose taxonomies *intentionally* deviate (that
    /// deviation is what their detectors exist to flag), so gating them
    /// on paper-shape reconciliation would be a category error.
    pub fn reconciles_taxonomy(&self) -> bool {
        self.name == "chaos-smoke"
    }

    /// Whether any causal failure source is active.
    pub fn injects_faults(&self) -> bool {
        self.machine_crash.is_some()
            || self.cluster_drain.is_some()
            || self.wan_partition.is_some()
            || self.overload.is_some()
            || self.deadlines.is_some()
            || self.incidents.is_some_and(|i| i.strikes())
    }

    /// The static error profile this scenario runs with: the full fleet
    /// default when no causal source is active, otherwise only the
    /// residual semantic classes (the mechanical classes — cancellation,
    /// deadline expiry, unavailability, resource exhaustion — are
    /// produced causally by the driver instead of drawn from a table).
    pub fn error_profile(&self) -> ErrorProfile {
        if self.injects_faults() {
            ErrorProfile::residual_default()
        } else {
            ErrorProfile::fleet_default()
        }
    }
}

impl Default for FaultScenario {
    fn default() -> Self {
        Self::none()
    }
}

/// Connectivity of one WAN cluster pair at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionState {
    /// Normal connectivity.
    Connected,
    /// Degraded: messages pass but carry excess latency.
    Brownout,
    /// Partitioned: targets across the pair are unreachable.
    Blackout,
}

/// Stream labels separating the plane's generator domains from every
/// other consumer of the master seed (the driver uses `0xD21_4E12`, sites
/// use `0x5173_0000`, …). Each entity derives its eligibility gate and
/// its trajectory from *different* labels so the gate draw never shifts
/// the trajectory.
const CRASH_LABEL: u64 = 0xFA17_0001;
const DRAIN_LABEL: u64 = 0xFA17_0002;
const PARTITION_LABEL: u64 = 0xFA17_0003;
const OVERLOAD_LABEL: u64 = 0xFA17_0004;
const GATE_LABEL: u64 = 0xFA17_00FF;

/// The per-shard materialisation of a [`FaultScenario`].
///
/// Episode processes are built lazily the first time an entity is
/// queried; construction reads only `(master seed, entity key)`, so two
/// planes over the same scenario and seed answer identically regardless
/// of query order — the property the fault-determinism test pins.
#[derive(Debug)]
pub struct FaultPlane {
    scenario: FaultScenario,
    seed: u64,
    crash: HashMap<u64, Option<EpisodeProcess>>,
    drain: HashMap<u16, Option<EpisodeProcess>>,
    partition: HashMap<u32, Option<EpisodeProcess>>,
    overload: HashMap<u32, Option<EpisodeProcess>>,
}

/// Lazily builds (or fetches) the episode process for one entity.
/// Ineligible entities are remembered as `None` so the gate draw happens
/// exactly once per entity. Shared with the incident plane
/// (`crate::incident`), whose generator domains are disjoint from the
/// per-entity fault labels above.
pub(crate) fn lazy_episode<'a, K: std::hash::Hash + Eq + Copy>(
    map: &'a mut HashMap<K, Option<EpisodeProcess>>,
    key: K,
    key_bits: u64,
    domain: u64,
    seed: u64,
    spec: &EpisodeSpec,
) -> Option<&'a mut EpisodeProcess> {
    map.entry(key)
        .or_insert_with(|| {
            let mut gate = Prng::seed_from(seed)
                .stream(GATE_LABEL ^ domain)
                .stream(key_bits);
            if gate.next_f64() < spec.eligible {
                Some(EpisodeProcess::new(
                    spec.params,
                    Prng::seed_from(seed).stream(domain).stream(key_bits),
                ))
            } else {
                None
            }
        })
        .as_mut()
}

impl FaultPlane {
    /// Materialises a scenario against the master seed. Returns `None`
    /// when the scenario injects no causal faults, so the driver's hot
    /// path can gate on plane presence alone.
    pub fn new(scenario: &FaultScenario, seed: u64) -> Option<Self> {
        scenario.injects_faults().then(|| FaultPlane {
            scenario: *scenario,
            seed,
            crash: HashMap::new(),
            drain: HashMap::new(),
            partition: HashMap::new(),
            overload: HashMap::new(),
        })
    }

    /// The scenario this plane materialises.
    pub fn scenario(&self) -> &FaultScenario {
        &self.scenario
    }

    /// Whether the task of `service` on machine `machine` of `cluster` is
    /// inside a crash/restart episode at `now`.
    pub fn machine_crashed(
        &mut self,
        service: u16,
        cluster: u16,
        machine: usize,
        now: SimTime,
    ) -> bool {
        let Some(spec) = self.scenario.machine_crash else {
            return false;
        };
        let key = ((service as u64) << 24) | ((cluster as u64) << 8) | machine as u64;
        match lazy_episode(&mut self.crash, key, key, CRASH_LABEL, self.seed, &spec) {
            Some(p) => p.active_at(now),
            None => false,
        }
    }

    /// Whether `cluster` is being drained at `now`.
    pub fn cluster_drained(&mut self, cluster: u16, now: SimTime) -> bool {
        let Some(spec) = self.scenario.cluster_drain else {
            return false;
        };
        match lazy_episode(
            &mut self.drain,
            cluster,
            cluster as u64,
            DRAIN_LABEL,
            self.seed,
            &spec,
        ) {
            Some(p) => p.active_at(now),
            None => false,
        }
    }

    /// Connectivity of the (unordered) cluster pair `a`–`b` at `now`.
    /// `wan` is the caller-computed path classification; non-WAN pairs
    /// never partition. Episodes alternate blackout/brownout on their
    /// ordinal, so no extra generator draw is spent classifying them.
    pub fn partition_state(&mut self, a: u16, b: u16, wan: bool, now: SimTime) -> PartitionState {
        let Some(spec) = self.scenario.wan_partition else {
            return PartitionState::Connected;
        };
        if !wan || a == b {
            return PartitionState::Connected;
        }
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let key = ((lo as u32) << 16) | hi as u32;
        match lazy_episode(
            &mut self.partition,
            key,
            key as u64,
            PARTITION_LABEL,
            self.seed,
            &spec.episodes,
        ) {
            Some(p) => match p.active_episode(now) {
                Some(episode) if episode % 2 == 0 => PartitionState::Blackout,
                Some(_) => PartitionState::Brownout,
                None => PartitionState::Connected,
            },
            None => PartitionState::Connected,
        }
    }

    /// The utilization surge multiplier for the deployment site of
    /// `service` in `cluster` at `now`, or `None` outside any surge.
    pub fn overload_factor(&mut self, service: u16, cluster: u16, now: SimTime) -> Option<f64> {
        let spec = self.scenario.overload?;
        let key = ((service as u32) << 16) | cluster as u32;
        match lazy_episode(
            &mut self.overload,
            key,
            key as u64,
            OVERLOAD_LABEL,
            self.seed,
            &spec.episodes,
        ) {
            Some(p) => p.active_at(now).then_some(spec.util_factor),
            None => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_resolve_by_name() {
        for name in FaultScenario::PRESETS {
            let s = FaultScenario::by_name(name).expect("preset resolves");
            assert_eq!(s.name, name);
        }
        assert!(FaultScenario::by_name("bogus").is_none());
    }

    #[test]
    fn none_scenario_has_no_plane_and_full_profile() {
        let none = FaultScenario::none();
        assert!(!none.injects_faults());
        assert!(FaultPlane::new(&none, 7).is_none());
        assert_eq!(
            none.error_profile().rates(),
            ErrorProfile::fleet_default().rates()
        );
    }

    #[test]
    fn active_scenarios_shrink_to_residual_profile() {
        for name in ["chaos-smoke", "partition", "overload-collapse"] {
            let s = FaultScenario::by_name(name).unwrap();
            assert!(s.injects_faults(), "{name}");
            assert_eq!(
                s.error_profile().rates(),
                ErrorProfile::residual_default().rates(),
                "{name}"
            );
        }
    }

    #[test]
    fn plane_answers_are_independent_of_query_order() {
        let scenario = FaultScenario::chaos_smoke();
        let mut forward = FaultPlane::new(&scenario, 7).unwrap();
        let mut backward = FaultPlane::new(&scenario, 7).unwrap();
        let instants: Vec<SimTime> = (0..2_000u64)
            .map(|i| SimTime::from_nanos(i * 43_000_000_000))
            .collect();
        let mut recorded = Vec::new();
        for &t in &instants {
            for entity in 0..16u16 {
                recorded.push((
                    forward.machine_crashed(entity, entity % 5, (entity % 3) as usize, t),
                    forward.cluster_drained(entity % 8, t),
                    forward.partition_state(entity % 8, 40 + entity % 8, true, t),
                    forward.overload_factor(entity, entity % 5, t),
                ));
            }
        }
        let mut idx = recorded.len();
        for &t in instants.iter().rev() {
            for entity in (0..16u16).rev() {
                idx -= 1;
                let expect = recorded[idx];
                // Query in reversed entity order too: lazy construction
                // must not depend on which entity was touched first.
                assert_eq!(
                    backward.overload_factor(entity, entity % 5, t),
                    expect.3,
                    "overload at {t}"
                );
                assert_eq!(
                    backward.partition_state(40 + entity % 8, entity % 8, true, t),
                    expect.2,
                    "partition at {t} (reversed pair)"
                );
                assert_eq!(backward.cluster_drained(entity % 8, t), expect.1);
                assert_eq!(
                    backward.machine_crashed(entity, entity % 5, (entity % 3) as usize, t),
                    expect.0
                );
            }
        }
    }

    #[test]
    fn eligibility_fraction_is_respected() {
        let mut scenario = FaultScenario::chaos_smoke();
        scenario.machine_crash = Some(EpisodeSpec {
            eligible: 1.0,
            ..scenario.machine_crash.unwrap()
        });
        let mut plane = FaultPlane::new(&scenario, 7).unwrap();
        // With eligibility 1.0 every machine eventually crashes.
        let mut saw_crash = 0;
        for m in 0..64u64 {
            for i in 0..2_000u64 {
                if plane.machine_crashed(
                    (m % 8) as u16,
                    (m / 8) as u16,
                    (m % 3) as usize,
                    SimTime::from_nanos(i * 43_000_000_000),
                ) {
                    saw_crash += 1;
                    break;
                }
            }
        }
        assert!(saw_crash > 48, "only {saw_crash}/64 machines ever crashed");

        // With eligibility 0.0…01, practically none do.
        scenario.machine_crash = Some(EpisodeSpec {
            eligible: 1e-9,
            ..scenario.machine_crash.unwrap()
        });
        let mut plane = FaultPlane::new(&scenario, 7).unwrap();
        for m in 0..64u64 {
            assert!(!plane.machine_crashed(
                (m % 8) as u16,
                (m / 8) as u16,
                (m % 3) as usize,
                SimTime::from_nanos(86_400_000_000_000)
            ));
        }
    }

    #[test]
    fn non_wan_pairs_never_partition() {
        let scenario = FaultScenario::partition();
        let mut plane = FaultPlane::new(&scenario, 7).unwrap();
        for i in 0..1_000u64 {
            let t = SimTime::from_nanos(i * 86_400_000_000);
            assert_eq!(
                plane.partition_state(3, 4, false, t),
                PartitionState::Connected
            );
            assert_eq!(
                plane.partition_state(5, 5, true, t),
                PartitionState::Connected
            );
        }
    }

    #[test]
    fn partitions_include_both_blackouts_and_brownouts() {
        let scenario = FaultScenario::partition();
        let mut plane = FaultPlane::new(&scenario, 7).unwrap();
        let mut states = std::collections::BTreeSet::new();
        for a in 0..8u16 {
            for b in 40..48u16 {
                for i in 0..5_000u64 {
                    let t = SimTime::from_nanos(i * 17_280_000_000);
                    let s = plane.partition_state(a, b, true, t);
                    states.insert(format!("{s:?}"));
                }
            }
        }
        assert!(states.contains("Blackout"), "no blackout seen: {states:?}");
        assert!(states.contains("Brownout"), "no brownout seen: {states:?}");
    }
}
