/root/repo/target/release/deps/rpclens_profiler-6cdb2a1f4b56067b.d: crates/profiler/src/lib.rs

/root/repo/target/release/deps/librpclens_profiler-6cdb2a1f4b56067b.rlib: crates/profiler/src/lib.rs

/root/repo/target/release/deps/librpclens_profiler-6cdb2a1f4b56067b.rmeta: crates/profiler/src/lib.rs

crates/profiler/src/lib.rs:
