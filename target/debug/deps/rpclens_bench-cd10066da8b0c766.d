/root/repo/target/debug/deps/rpclens_bench-cd10066da8b0c766.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs

/root/repo/target/debug/deps/rpclens_bench-cd10066da8b0c766: crates/bench/src/lib.rs crates/bench/src/ablation.rs

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
