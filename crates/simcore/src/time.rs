//! Simulated time: nanosecond-resolution instants and durations.
//!
//! All simulation components agree on a single monotonically increasing
//! clock. Time is represented as whole nanoseconds in a `u64`, which covers
//! ~584 years of simulated time — far more than the 700-day window the
//! characterization study spans.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulation clock, in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds since the epoch.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Returns this instant as nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns this instant as (fractional) seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration elapsed since `earlier`.
    ///
    /// Saturates to zero if `earlier` is after `self`, which keeps
    /// measurement code robust against components that record completion
    /// before enqueue due to zero-cost stages.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Truncates this instant down to a multiple of `window`.
    ///
    /// Used by the monitoring database to align samples on 30-minute
    /// boundaries.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn align_down(self, window: SimDuration) -> SimTime {
        assert!(window.0 > 0, "alignment window must be non-zero");
        SimTime(self.0 - self.0 % window.0)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000_000_000)
    }

    /// Creates a duration from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// Negative and NaN inputs clamp to zero (so sampled service times can
    /// never run the clock backwards); `+inf` clamps to the maximum
    /// representable duration.
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((s * 1e9).round().min(u64::MAX as f64) as u64)
    }

    /// Creates a duration from fractional microseconds, clamping like
    /// [`SimDuration::from_secs_f64`].
    pub fn from_micros_f64(us: f64) -> Self {
        Self::from_secs_f64(us / 1e6)
    }

    /// Returns the duration as whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Returns the duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating duration addition.
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Multiplies the duration by a non-negative factor, rounding to
    /// nanoseconds and clamping at the representable range.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        self.saturating_add(rhs)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.2}us", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            write!(f, "{:.2}ms", ns as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        }
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimDuration::from_mins(2).as_nanos(), 120_000_000_000);
        assert_eq!(SimDuration::from_hours(1).as_nanos(), 3_600_000_000_000);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(30);
        assert_eq!(b.since(a).as_nanos(), 20);
        assert_eq!(a.since(b).as_nanos(), 0);
    }

    #[test]
    fn from_secs_f64_clamps_bad_inputs() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(f64::NEG_INFINITY),
            SimDuration::ZERO
        );
        assert!(SimDuration::from_secs_f64(f64::INFINITY).as_nanos() > 0);
    }

    #[test]
    fn align_down_truncates() {
        let t = SimTime::from_nanos(95);
        assert_eq!(t.align_down(SimDuration::from_nanos(30)).as_nanos(), 90);
        assert_eq!(
            SimTime::ZERO.align_down(SimDuration::from_nanos(30)),
            SimTime::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn align_down_zero_window_panics() {
        let _ = SimTime::from_nanos(1).align_down(SimDuration::ZERO);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimDuration::from_nanos(17).to_string(), "17ns");
        assert_eq!(SimDuration::from_micros(5).to_string(), "5.00us");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.00ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.000s");
    }

    #[test]
    fn sum_folds_durations() {
        let total: SimDuration = (1..=4u64).map(SimDuration::from_nanos).sum();
        assert_eq!(total.as_nanos(), 10);
    }

    proptest! {
        #[test]
        fn add_then_since_is_identity(start in 0u64..u64::MAX / 2, delta in 0u64..u64::MAX / 2) {
            let t = SimTime::from_nanos(start);
            let d = SimDuration::from_nanos(delta);
            prop_assert_eq!((t + d).since(t), d);
        }

        #[test]
        fn align_down_is_idempotent(t in 0u64..u64::MAX / 2, w in 1u64..1_000_000u64) {
            let w = SimDuration::from_nanos(w);
            let once = SimTime::from_nanos(t).align_down(w);
            prop_assert_eq!(once.align_down(w), once);
            prop_assert!(once <= SimTime::from_nanos(t));
        }

        #[test]
        fn secs_f64_roundtrip_within_rounding(ns in 0u64..1_000_000_000_000u64) {
            let d = SimDuration::from_nanos(ns);
            let back = SimDuration::from_secs_f64(d.as_secs_f64());
            let diff = back.as_nanos().abs_diff(ns);
            // f64 has 52 mantissa bits; allow proportional rounding slack.
            prop_assert!(diff <= 1 + ns / (1 << 50));
        }
    }
}
