/root/repo/target/release/deps/rpclens_netsim-4397730354f5de73.d: crates/netsim/src/lib.rs crates/netsim/src/congestion.rs crates/netsim/src/geo.rs crates/netsim/src/latency.rs crates/netsim/src/topology.rs

/root/repo/target/release/deps/librpclens_netsim-4397730354f5de73.rlib: crates/netsim/src/lib.rs crates/netsim/src/congestion.rs crates/netsim/src/geo.rs crates/netsim/src/latency.rs crates/netsim/src/topology.rs

/root/repo/target/release/deps/librpclens_netsim-4397730354f5de73.rmeta: crates/netsim/src/lib.rs crates/netsim/src/congestion.rs crates/netsim/src/geo.rs crates/netsim/src/latency.rs crates/netsim/src/topology.rs

crates/netsim/src/lib.rs:
crates/netsim/src/congestion.rs:
crates/netsim/src/geo.rs:
crates/netsim/src/latency.rs:
crates/netsim/src/topology.rs:
