//! The fleet simulation driver.
//!
//! Expands every root RPC into its full call tree through the
//! nine-component pipeline of Fig. 9:
//!
//! ```text
//! client send queue -> request stack processing -> request network wire
//!   -> server recv queue (wakeup + M/G/k wait at the machine's current
//!      utilization) -> handler compute (x machine slowdown) -> nested
//!      fan-out (parallel) -> server send queue -> response stack
//!      processing -> response network wire -> client recv queue
//! ```
//!
//! Server queueing is *analytic*: the traced RPCs are a sampled slice of
//! production traffic, so their waiting time is driven by the background
//! utilization captured in each machine's exogenous profile (see
//! `rpclens-cluster::mgk`). Cross-trace coupling flows through the shared
//! network congestion processes and the shared diurnal load, which is the
//! coupling the paper's analyses actually exercise.
//!
//! Every simulated span feeds the popularity counters; sampled traces are
//! stored in full; cycles flow to the profiler and errors to the error
//! accounting.

use crate::catalog::{Catalog, CatalogConfig, ServiceCategory, ServiceHot};
use crate::control::{admission_verdict, AdmissionVerdict, ControlPlane};
use crate::faults::{FaultPlane, FaultScenario, PartitionState};
use crate::incident::IncidentPlane;
use crate::pool;
use crate::streamagg;
use crate::workload::{RootArrival, Workload};
use rpclens_cluster::exogenous::ExogenousProfile;
use rpclens_cluster::machine::{Machine, MachineConfig, MachineId};
use rpclens_cluster::mgk::QueueModel;
use rpclens_cluster::site::DensePairMap;
use rpclens_netsim::latency::{Network, NetworkConfig};
use rpclens_netsim::topology::{ClusterId, Topology};
use rpclens_obs::telemetry::{PhaseTimings, RunTelemetry, ShardCounters, ShardReport};
use rpclens_profiler::{CycleProfiler, ErrorAccounting};
use rpclens_rpcstack::component::{LatencyBreakdown, LatencyComponent};
use rpclens_rpcstack::cost::{CycleCategory, CycleCost, StackCostConfig, StackCostModel};
use rpclens_rpcstack::deadline::Deadline;
use rpclens_rpcstack::error::{ErrorKind, ErrorProfile};
use rpclens_rpcstack::hedging::resolve_hedge;
use rpclens_rpcstack::queue::SoftQueue;
use rpclens_rpcstack::retry::{BackoffPolicy, RetryBudget};
use rpclens_simcore::dist::Sample;
use rpclens_simcore::rng::Prng;
use rpclens_simcore::time::{SimDuration, SimTime};
use rpclens_trace::collector::{TraceCollector, TraceStore};
use rpclens_trace::span::{MethodId, ServiceId, SpanBuilder, SpanRecord, TraceData, ROOT_PARENT};
use rpclens_tsdb::metric::{Labels, MetricDescriptor, MetricValue};
use rpclens_tsdb::store::TimeSeriesDb;
use std::sync::Mutex as StdMutex;
use std::time::Instant;

/// Simulation scale presets.
#[derive(Debug, Clone)]
pub struct SimScale {
    /// Preset name (recorded in EXPERIMENTS.md).
    pub name: &'static str,
    /// Catalog size.
    pub total_methods: usize,
    /// Number of root RPCs to issue.
    pub roots: u64,
    /// Simulated duration (24 h keeps the diurnal analyses meaningful).
    pub duration: SimDuration,
    /// Head-based trace sampling: store 1 in N trees.
    pub trace_sample_rate: u64,
    /// Per-method profiler sample retention: each method keeps at most
    /// this many normalized-cycle samples in its deterministic bottom-k
    /// reservoir (`rpclens_profiler::CycleProfiler`). Like
    /// `trace_sample_rate`, this is a retention decision — every call's
    /// cycles are still counted exactly in the category/service totals;
    /// only the per-method quantile sample set is bounded.
    pub profiler_sample_cap: usize,
    /// Master seed.
    pub seed: u64,
}

impl SimScale {
    /// CI-friendly scale: ~400 methods, 6k roots.
    pub fn smoke() -> Self {
        SimScale {
            name: "smoke",
            total_methods: 400,
            roots: 6_000,
            duration: SimDuration::from_hours(24),
            trace_sample_rate: 1,
            profiler_sample_cap: 10_000,
            seed: 7,
        }
    }

    /// Default scale: ~2,000 methods, 60k roots (seconds to run).
    pub fn default_scale() -> Self {
        SimScale {
            name: "default",
            total_methods: 2_000,
            roots: 120_000,
            duration: SimDuration::from_hours(24),
            trace_sample_rate: 1,
            profiler_sample_cap: 10_000,
            seed: 7,
        }
    }

    /// Paper scale: the full 10,000-method population.
    pub fn paper() -> Self {
        SimScale {
            name: "paper",
            total_methods: 10_000,
            roots: 700_000,
            duration: SimDuration::from_hours(24),
            trace_sample_rate: 1,
            profiler_sample_cap: 10_000,
            seed: 7,
        }
    }

    /// Fleet scale: a simulated day of traffic at cloud scale — two
    /// million root RPCs over the full 10,000-method population.
    ///
    /// Built for the multi-threaded driver: memory stays bounded by
    /// retention, not simulation length — head-sampling keeps 1 in
    /// 1,024 trace trees and the profiler keeps at most 256
    /// normalized-cycle samples per method (both pure retention
    /// decisions: every tree is still simulated and every cycle still
    /// counted; see `docs/PERFORMANCE.md`). Aggregation state streams
    /// through `crate::streamagg` one window at a time. The measured
    /// budget is documented in `docs/PERFORMANCE.md` and gated by
    /// `bench-ceiling rss` in CI.
    pub fn fleet() -> Self {
        SimScale {
            name: "fleet",
            total_methods: 10_000,
            roots: 2_000_000,
            duration: SimDuration::from_hours(24),
            trace_sample_rate: 1_024,
            // 17M spans over 10k methods retain ~1,700 samples/method at
            // the default 10k cap — ~170 MB of reservoir state, the
            // single largest term of a fleet run. 256 keeps every
            // per-method analysis above its >=100-sample floor while
            // bounding the reservoirs to a few tens of MB.
            profiler_sample_cap: 256,
            seed: 7,
        }
    }
}

/// Full driver configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Scale preset.
    pub scale: SimScale,
    /// Stack cycle-cost coefficients.
    pub cost: StackCostConfig,
    /// Network constants.
    pub net: NetworkConfig,
    /// Hard cap on spans per trace (keeps pathological bursts bounded).
    pub max_trace_spans: usize,
    /// Hard cap on call depth.
    pub max_depth: u32,
    /// Error injection profile. With a fault scenario active this should
    /// be the *residual* profile (semantic classes only) — the mechanical
    /// classes (`Unavailable`, `NoResource`, `DeadlineExceeded`) are then
    /// produced causally by the fault plane. [`FleetConfig::with_faults`]
    /// pairs the two automatically.
    pub errors: ErrorProfile,
    /// Fault scenario: failure episode sources plus the client resilience
    /// response (deadlines, budgeted retries with failover). The default
    /// [`FaultScenario::none`] leaves the driver's draw sequence
    /// byte-identical to a build without the fault plane.
    pub faults: FaultScenario,
    /// Whether clients hedge slow requests (disable for ablations).
    pub hedging_enabled: bool,
    /// Whether the per-trace [`RetryBudget`] token bucket gates retries
    /// (disable for ablations: retries are then bounded only by
    /// `max_attempts`, which is what lets a retry storm amplify).
    pub retry_budget_enabled: bool,
    /// Whether reserved-core isolation is honoured (disable for
    /// ablations: KV-Store then shares cores like everyone else).
    pub reserved_cores_enabled: bool,
    /// Number of worker shards the root workload is split across.
    ///
    /// Shards are the unit of *determinism*: contiguous root chunks whose
    /// accumulators merge in shard-id order. The run's outputs are
    /// bit-identical for every value (see the "Determinism contract"
    /// section of `docs/ARCHITECTURE.md`). Values are clamped to at
    /// least 1; the default is one shard per available core.
    pub shards: usize,
    /// Number of worker threads the shards execute on.
    ///
    /// Threads are the unit of *execution*: a bounded pool
    /// ([`crate::pool`]) on which workers claim shard ids dynamically.
    /// Like `shards`, this is purely a wall-clock knob — completed
    /// shards stream through an order-restoring merge, so every output
    /// is bit-identical at any thread count. Clamped to `1..=shards`;
    /// the default is one thread per available core.
    pub threads: usize,
    /// Emit per-shard progress lines on stderr as shards complete
    /// (cumulative roots/s and spans/s). Purely observational: progress
    /// goes to stderr only and never touches artifacts or digests.
    pub progress: bool,
}

/// One shard (or worker thread) per available core, falling back to 1
/// when the parallelism of the host cannot be determined.
fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

impl FleetConfig {
    /// A configuration at the given scale with fleet-default everything.
    pub fn at_scale(scale: SimScale) -> Self {
        FleetConfig {
            scale,
            cost: StackCostConfig::default(),
            net: NetworkConfig::default(),
            max_trace_spans: 4_000,
            max_depth: 12,
            errors: ErrorProfile::fleet_default(),
            faults: FaultScenario::none(),
            hedging_enabled: true,
            retry_budget_enabled: true,
            reserved_cores_enabled: true,
            shards: available_cores(),
            threads: available_cores(),
            progress: false,
        }
    }

    /// The same configuration under a fault scenario, with the error
    /// profile switched to the scenario's matching profile (residual
    /// semantic classes when faults are causal, the full static fleet
    /// profile under `none`).
    pub fn with_faults(mut self, scenario: FaultScenario) -> Self {
        self.errors = scenario.error_profile();
        self.faults = scenario;
        self
    }
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self::at_scale(SimScale::default_scale())
    }
}

/// One deployment site: a service's presence in one cluster.
#[derive(Debug)]
pub struct ServiceSite {
    /// The service.
    pub service: ServiceId,
    /// The cluster.
    pub cluster: ClusterId,
    /// Cluster-level load profile for this service here.
    pub load: ExogenousProfile,
    /// Machines at this site (each with its own load offset baked into
    /// its profile).
    pub machines: Vec<Machine>,
    /// Static per-machine load multipliers (data-dependence skew).
    pub machine_offsets: Vec<f64>,
    /// Analytic queue model for the site's pools.
    pub queue: QueueModel,
}

impl ServiceSite {
    /// The effective utilization of machine `mi` at instant `t`.
    pub fn machine_util(&self, mi: usize, t: SimTime) -> f64 {
        (self.load.cpu_util_at(t) * self.machine_offsets[mi]).clamp(0.02, 0.98)
    }
}

/// Everything a completed simulation exposes to the analyses.
#[derive(Debug)]
pub struct FleetRun {
    /// The catalog used.
    pub catalog: Catalog,
    /// The topology used.
    pub topology: Topology,
    /// Sampled traces.
    pub store: TraceStore,
    /// Cycle accounting.
    pub profiler: CycleProfiler,
    /// Error accounting.
    pub errors: ErrorAccounting,
    /// Monitoring database (per-service counters, exogenous gauges).
    pub tsdb: TimeSeriesDb,
    /// Per-method total simulated calls (including unsampled traces).
    pub method_calls: Vec<u64>,
    /// Per-method total bytes moved (request + response).
    pub method_bytes: Vec<u64>,
    /// Deployment sites, densely keyed by (service, cluster).
    pub sites: DensePairMap<ServiceSite>,
    /// Total spans simulated.
    pub total_spans: u64,
    /// Self-telemetry of the run: deterministic counters plus labeled
    /// wall-clock execution shape (see `rpclens-obs`).
    pub telemetry: RunTelemetry,
    /// The configuration used.
    pub config: FleetConfig,
}

impl FleetRun {
    /// The site of a service in a cluster, if deployed there.
    pub fn site(&self, service: ServiceId, cluster: ClusterId) -> Option<&ServiceSite> {
        self.sites.get(service.0, cluster.0)
    }

    /// All sites of one service, sorted by cluster id.
    pub fn sites_of(&self, service: ServiceId) -> Vec<&ServiceSite> {
        let mut out: Vec<&ServiceSite> = self
            .sites
            .values()
            .filter(|s| s.service == service)
            .collect();
        out.sort_by_key(|s| s.cluster);
        out
    }

    /// Total simulated calls across all methods.
    pub fn total_calls(&self) -> u64 {
        self.method_calls.iter().sum()
    }
}

/// Runs the fleet simulation.
pub fn run_fleet(config: FleetConfig) -> FleetRun {
    Driver::new(config).run()
}

/// Per-trace expansion context.
struct TraceCtx {
    spans: Vec<SpanRecord>,
    root_start: SimTime,
    budget: usize,
    rng: Prng,
    /// Global sequence number of this trace's root (shard-invariant);
    /// seeds the profiler's deterministic sample tags.
    seq: u64,
    /// Fault-model errors injected while expanding this trace.
    errors: u64,
    /// Wire traversals of this trace that hit a congestion episode.
    congested_wire: u64,
    /// Per-trace retry budget (present only when the scenario retries).
    retry_budget: Option<RetryBudget>,
    /// Retry attempts issued while expanding this trace.
    retries: u64,
    /// Calls shed at a bounded admission queue while expanding this trace.
    admission_shed: u64,
    /// Calls abandoned at a bounded admission queue while expanding this
    /// trace.
    admission_abandoned: u64,
}

/// Outcome of one placed call as seen by the caller.
struct CallOutcome {
    finish: SimTime,
}

/// Placement to steer away from on a retry (load-balancer failover).
#[derive(Clone, Copy)]
struct Avoid {
    /// The failed attempt's server cluster.
    cluster: ClusterId,
    /// The failed attempt's machine index within its site.
    machine: usize,
    /// Whether the failure condemned the whole cluster (partition,
    /// drain, overload shed) rather than one machine (crash).
    cluster_level: bool,
}

/// Everything one attempt (primary + optional hedge) reports back to the
/// retry loop: the caller-observed outcome plus the winner's error and
/// placement, which steer backoff and failover.
struct AttemptResult {
    outcome: CallOutcome,
    /// The winner's final error, if any.
    error: Option<ErrorKind>,
    /// The winner's placement `(cluster, machine index)`.
    server: Option<(ClusterId, usize)>,
    /// Whether the winner's failure condemned the whole cluster.
    cluster_level: bool,
}

/// What one `simulate_call` reports to `place_attempt`.
struct SimResult {
    outcome: CallOutcome,
    /// Span index, or `None` if the span budget was exhausted.
    span: Option<u32>,
    /// Final error on this call, if any.
    error: Option<ErrorKind>,
    /// Placement `(cluster, machine index)`.
    server: Option<(ClusterId, usize)>,
    /// Whether the error condemned the whole cluster.
    cluster_level: bool,
}

/// The immutable simulation world, shared by reference across shards.
///
/// Everything here is read-only while roots are being expanded: the
/// catalog, topology, deployment sites (machines are stateless — their
/// wakeup jitter comes from the caller's generator), cost model, and the
/// master generator (stream derivation reads seed state without
/// consuming it). All mutable state lives in per-shard [`Shard`]s.
struct Driver {
    config: FleetConfig,
    catalog: Catalog,
    topology: Topology,
    cost: StackCostModel,
    soft_queue: SoftQueue,
    sites: DensePairMap<ServiceSite>,
    /// Precomputed per-service placement state for `choose_cluster`.
    placement: Vec<SvcPlacement>,
    /// Ambient client-side load profile per cluster.
    client_profiles: Vec<ExogenousProfile>,
    /// Region id of each cluster, indexed by cluster id — the incident
    /// and control planes key their correlated trajectories on this.
    region_of: Vec<u16>,
    /// Per-method root-deadline band `(lo_secs, hi/lo)` when the
    /// scenario uses per-family deadlines: `[q50 × lo_mult, q99 ×
    /// hi_mult]` of the method's own compute distribution, scaled by its
    /// service category and clamped to the scenario's budget bounds.
    /// `None` under global (or no) deadlines.
    deadline_bands: Option<Vec<(f64, f64)>>,
    master_rng: Prng,
}

/// Precomputed cluster-choice state for one service: the deployment
/// membership mask plus the softmax weight row (over the service's
/// deployment list) for every possible client cluster. `rtt_estimate` is a
/// pure function of the topology, so folding the weights at startup leaves
/// `choose_cluster` with table reads only — and the weights are the exact
/// f64s the per-call computation produced, keeping cluster choice
/// bit-identical.
struct SvcPlacement {
    /// Bit `c` is set when cluster `c` is in the deployment list.
    deployed_mask: u64,
    /// Softmax weights, flattened `[client * deployed_len + j]` where `j`
    /// indexes the service's sorted deployment list.
    weights: Vec<f64>,
    /// Per-client-cluster weight totals (summed in row order).
    totals: Vec<f64>,
}

impl Driver {
    fn new(config: FleetConfig) -> Self {
        let seed = config.scale.seed;
        let topology = Topology::default_world(seed);
        let catalog = Catalog::generate(
            &CatalogConfig {
                total_methods: config.scale.total_methods,
                seed,
            },
            &topology,
        );
        let cost = StackCostModel::new(config.cost);
        let master_rng = Prng::seed_from(seed).stream(0xD21_4E12);

        // Build deployment sites with per-cluster load diversity: each
        // (service, cluster) pair gets its own base utilization, which is
        // what makes Fig. 16's clusters differ and Fig. 22's cross-cluster
        // CPU usage so spread out. Sites land in a dense (service,
        // cluster)-indexed table, inserted in (service, deployment) order
        // so iteration is deterministic.
        let mut site_entries = Vec::new();
        for svc in catalog.services() {
            for (ci, &cluster) in svc.clusters.iter().enumerate() {
                let mut site_rng =
                    master_rng.stream(0x5173_0000 ^ ((svc.id.0 as u64) << 20) ^ cluster.0 as u64);
                let base_util = ((0.25 + 0.55 * site_rng.next_f64()) * svc.util_bias).min(0.92);
                let load = ExogenousProfile {
                    base_util,
                    diurnal_amp: 0.10 + 0.10 * site_rng.next_f64(),
                    peak_hour: 13.0 + 3.0 * site_rng.next_f64(),
                    noise: 0.05,
                    mem_bw_peak_gbps: 120.0,
                    seed: seed ^ ((svc.id.0 as u64) << 32) ^ ((cluster.0 as u64) << 8),
                };
                let n_machines = 3 + site_rng.index(3);
                let mut machines = Vec::with_capacity(n_machines);
                let mut machine_offsets = Vec::with_capacity(n_machines);
                for mi in 0..n_machines {
                    // Data-dependent services have skewed per-machine
                    // load (log-normal around the cluster base); others
                    // are near-uniform.
                    let z = site_rng.next_f64() * 2.0 - 1.0;
                    let offset = (svc.machine_skew * 1.8 * z).exp().clamp(0.4, 2.4);
                    machine_offsets.push(offset);
                    let mprofile = ExogenousProfile {
                        base_util: (base_util * offset).clamp(0.02, 0.95),
                        seed: load.seed ^ ((mi as u64) << 48),
                        ..load
                    };
                    machines.push(Machine::new(
                        MachineId(((svc.id.0 as u32) << 16) | ((ci as u32) << 8) | mi as u32),
                        MachineConfig {
                            speed: 0.85 + 0.3 * site_rng.next_f64(),
                            reserved_cores: svc.reserved_cores && config.reserved_cores_enabled,
                            baseline_cpi: 1.0,
                        },
                        mprofile,
                    ));
                }
                let queue =
                    QueueModel::new(svc.workers, svc.background_service, svc.background_scv);
                site_entries.push((
                    (svc.id.0, cluster.0),
                    ServiceSite {
                        service: svc.id,
                        cluster,
                        load,
                        machines,
                        machine_offsets,
                        queue,
                    },
                ));
            }
        }
        let sites = DensePairMap::build(
            catalog.num_services(),
            topology.num_clusters(),
            site_entries,
        );

        // Precompute the latency-aware cluster-choice weights: the
        // softmax over negative RTT is time-invariant, so the per-call
        // work reduces to one row scan. A probe network supplies the
        // same `rtt_estimate` the per-call path used.
        let probe_net = Network::new(topology.clone(), config.net.clone(), seed);
        let n_clusters = topology.num_clusters();
        let mut placement = Vec::with_capacity(catalog.num_services());
        for svc in catalog.services() {
            let mut deployed_mask = 0u64;
            for c in &svc.clusters {
                assert!(
                    (c.0 as usize) < 64,
                    "cluster id {} exceeds the deployment mask width",
                    c.0
                );
                deployed_mask |= 1u64 << c.0;
            }
            let n = svc.clusters.len();
            let mut weights = Vec::with_capacity(n_clusters * n);
            let mut totals = Vec::with_capacity(n_clusters);
            for client in 0..n_clusters {
                let client = ClusterId(client as u16);
                let row_start = weights.len();
                for &c in &svc.clusters {
                    let rtt_ms = probe_net.rtt_estimate(client, c).as_millis_f64();
                    weights.push((-rtt_ms / 1.0).exp().max(1e-12));
                }
                totals.push(weights[row_start..].iter().sum());
            }
            placement.push(SvcPlacement {
                deployed_mask,
                weights,
                totals,
            });
        }

        let client_profiles = topology
            .cluster_ids()
            .iter()
            .map(|c| ExogenousProfile {
                base_util: 0.3 + 0.3 * ((c.0 as f64 * 0.37).sin().abs()),
                ..ExogenousProfile::shared(seed ^ (c.0 as u64) << 17)
            })
            .collect();

        let region_of: Vec<u16> = topology.clusters().map(|c| c.region.0).collect();

        // Per-family deadline bands: a Storage read and a BigQuery scan
        // should not share one global log-uniform budget draw. Each
        // method's band comes from its *own* compute quantiles — callers
        // budget a multiple of the typical (q50) latency at the floor
        // and of the tail (q99) at the ceiling — with the multiplier
        // pair set by the owning service's category (latency-sensitive
        // callers budget tightest, compute-intensive loosest). Still
        // exactly one rng draw per root.
        let deadline_bands = config
            .faults
            .deadlines
            .filter(|ds| ds.per_family)
            .map(|ds| {
                let floor = ds.min_budget.as_secs_f64();
                let ceil = ds.max_budget.as_secs_f64().max(floor);
                catalog
                    .methods()
                    .iter()
                    .map(|m| {
                        let (lo_mult, hi_mult) = match catalog.service(m.service).category {
                            ServiceCategory::Storage => (100.0, 5_000.0),
                            ServiceCategory::ComputeIntensive => (50.0, 10_000.0),
                            ServiceCategory::LatencySensitive => (30.0, 1_000.0),
                            ServiceCategory::Frontend => (100.0, 8_000.0),
                            ServiceCategory::Infra => (100.0, 5_000.0),
                        };
                        let lo = (m.compute.quantile(0.5) * lo_mult).clamp(floor, ceil);
                        let hi = (m.compute.quantile(0.99) * hi_mult).clamp(lo, ceil);
                        (lo, hi / lo)
                    })
                    .collect()
            });

        Driver {
            config,
            catalog,
            topology,
            cost,
            soft_queue: SoftQueue::default(),
            sites,
            placement,
            client_profiles,
            region_of,
            deadline_bands,
            master_rng,
        }
    }

    /// The site of a deployed (service, cluster) pair.
    #[inline]
    fn site(&self, service: ServiceId, cluster: ClusterId) -> &ServiceSite {
        self.sites
            .get(service.0, cluster.0)
            .expect("call placed on an undeployed site")
    }

    /// Latency-aware cluster choice: stay local when deployed locally and
    /// the data is local; otherwise prefer the nearest deployed cluster.
    ///
    /// Reads only precomputed state (deployment mask, softmax weight
    /// rows); draw-for-draw identical to computing the weights inline.
    fn choose_cluster(
        &self,
        service: ServiceId,
        deployed: &[ClusterId],
        client: ClusterId,
        sh: &ServiceHot,
        rng: &mut Prng,
    ) -> ClusterId {
        let placement = &self.placement[service.0 as usize];
        let local = placement.deployed_mask >> client.0 & 1 == 1;
        if local && !rng.chance(sh.remote_call_prob) {
            return client;
        }
        // A fraction of locality misses land wherever the data lives,
        // however far (Fig. 19's intercontinental clients).
        if rng.chance(sh.data_miss_prob) {
            return deployed[rng.index(deployed.len())];
        }
        // Softmax over negative RTT (the production balancer's
        // latency-aware behaviour): strongly prefers nearby clusters.
        let n = deployed.len();
        let row = &placement.weights[client.0 as usize * n..client.0 as usize * n + n];
        let total = placement.totals[client.0 as usize];
        let mut u = rng.next_f64() * total;
        for (i, w) in row.iter().enumerate() {
            u -= w;
            if u <= 0.0 {
                return deployed[i];
            }
        }
        *deployed.last().expect("non-empty deployment")
    }

    fn run(self) -> FleetRun {
        let scale = self.config.scale.clone();
        let mut phases = PhaseTimings::new();
        let mut workload = Workload::new(
            &self.catalog,
            &self.topology,
            scale.duration,
            scale.seed ^ 0xAB,
        );
        // Roots are generated once, on the main thread, in arrival order;
        // shards receive contiguous chunks of this one sequence so that a
        // shard-ordered merge reproduces the sequential run exactly.
        let roots = phases.time("generate", || workload.generate(scale.roots));
        let collector = TraceCollector::new(scale.trace_sample_rate);
        let requested_shards = self.config.shards.clamp(1, roots.len().max(1));
        let chunk = roots.len().div_ceil(requested_shards).max(1);
        // Effective shard count: the number of non-empty root chunks.
        // Only degenerate configs (more shards than roots per chunk
        // rounding can fill) make this smaller than requested.
        let shards = roots.len().div_ceil(chunk).max(1);
        let threads = self.config.threads.clamp(1, shards);

        // Streaming window aggregation (`crate::streamagg`): the sink
        // receives finalized windows while shards are still running, so
        // no shard ever materializes the full `(service, window)` grid.
        // `first_windows[j]` is the window of shard j's first root —
        // non-decreasing in j because roots are in arrival order — and
        // bounds which merged windows are final once shard j has folded.
        let window = rpclens_tsdb::DEFAULT_SAMPLE_PERIOD;
        let sink = streamagg::WindowSink::new(self.catalog.num_services(), window.as_nanos());
        let first_windows: Vec<usize> = (0..shards)
            .map(|j| {
                roots
                    .get(j * chunk)
                    .map_or(0, |r| (r.at.as_nanos() / window.as_nanos()) as usize)
            })
            .collect();

        // Workers claim shard ids from a shared counter and stream each
        // completed shard into an order-restoring fold (`crate::pool`):
        // the accumulator absorbs shard i only after shards 0..i, so the
        // merged result is bit-identical to the sequential run at any
        // thread count — every accumulator either commutes (integer
        // counters, histograms) or is order-sensitive but folded over
        // contiguous partitions in sequence order (the trace store).
        // Folding eagerly also bounds memory: at most ~`threads` shard
        // accumulators are resident at once, not `shards` of them.
        let simulate_start = Instant::now();
        let reports: StdMutex<Vec<ShardReport>> = StdMutex::new(Vec::with_capacity(shards));
        let merge_ms = StdMutex::new(0.0f64);
        let merged = pool::run_shards(
            shards,
            threads,
            |id| {
                let shard_start = Instant::now();
                let mut shard = Shard::new(&self);
                if id == 0 {
                    // Shard 0 streams closed windows straight to the sink:
                    // anything it closes mid-run is below every other
                    // shard's first window, so it is already final. (Its
                    // final *open* window stays in `closed` — shard 1 may
                    // share it.)
                    shard.live = Some(&sink);
                }
                let lo = id * chunk;
                let hi = (lo + chunk).min(roots.len());
                shard.run_roots(&roots[lo..hi], lo, &collector);
                shard.seal();
                {
                    let mut done = reports.lock().expect("report lock");
                    done.push(ShardReport {
                        shard: id,
                        roots: shard.counters.roots,
                        spans: shard.counters.spans,
                        wall_ms: shard_start.elapsed().as_secs_f64() * 1e3,
                    });
                    // Progress is stderr-only and computed under the
                    // report lock, so lines never interleave; it has no
                    // effect on any artifact or digest.
                    if self.config.progress {
                        let total_roots: u64 = done.iter().map(|r| r.roots).sum();
                        let total_spans: u64 = done.iter().map(|r| r.spans).sum();
                        let elapsed = simulate_start.elapsed().as_secs_f64().max(1e-9);
                        eprintln!(
                            "progress: shard {}/{} done in {:.0} ms | {}/{} roots \
                             ({:.0}/s) | {} spans ({:.0}/s) | {:.1} s elapsed",
                            done.len(),
                            shards,
                            done.last().expect("just pushed").wall_ms,
                            total_roots,
                            roots.len(),
                            total_roots as f64 / elapsed,
                            total_spans,
                            total_spans as f64 / elapsed,
                            elapsed,
                        );
                    }
                }
                shard
            },
            |acc, next, id| {
                let merge_start = Instant::now();
                acc.absorb(next);
                // Eager window flush: after shard `id` folds, every
                // accumulated window below shard `id + 1`'s first window
                // can never receive another contribution — stream it to
                // the sink and drop it, so merged window state never
                // accumulates across the run.
                if let Some(&bound) = first_windows.get(id + 1) {
                    let cut = acc.closed.partition_point(|cw| cw.w < bound);
                    for cw in acc.closed.drain(..cut) {
                        sink.push(&cw);
                    }
                }
                *merge_ms.lock().expect("merge-time lock") +=
                    merge_start.elapsed().as_secs_f64() * 1e3;
            },
        );
        phases.record("simulate", simulate_start.elapsed().as_secs_f64() * 1e3);
        phases.record("merge", merge_ms.into_inner().expect("merge-time lock"));
        let mut per_shard = reports.into_inner().expect("report lock");
        per_shard.sort_by_key(|r| r.shard);

        let Shard {
            store,
            profiler,
            errors,
            method_calls,
            method_bytes,
            closed,
            counters,
            total_spans,
            ..
        } = merged;
        debug_assert_eq!(counters.spans, total_spans);

        // Final window flush: whatever the last fold could not prove
        // final (at most the tail windows at or above the last shard's
        // first window) drains now.
        for cw in &closed {
            sink.push(cw);
        }

        // Flush counters and representative exogenous gauges to the TSDB.
        let tsdb_start = Instant::now();
        let retention = SimDuration::from_hours(24 * 700);
        let mut tsdb = TimeSeriesDb::new(window);
        tsdb.register(MetricDescriptor::counter("rpc/server/count", retention))
            .expect("fresh tsdb");
        tsdb.register(MetricDescriptor::gauge(
            "machine/cpu/utilization",
            retention,
        ))
        .expect("fresh tsdb");
        // Driver self-telemetry streams: live fleet metrics the
        // observability plane's detectors read back per window.
        tsdb.register(MetricDescriptor::counter("driver/rpcs/count", retention))
            .expect("fresh tsdb");
        tsdb.register(MetricDescriptor::counter("driver/errors/count", retention))
            .expect("fresh tsdb");
        tsdb.register(MetricDescriptor::counter(
            "driver/wire/congested",
            retention,
        ))
        .expect("fresh tsdb");
        tsdb.register(MetricDescriptor::counter("driver/retries/count", retention))
            .expect("fresh tsdb");
        tsdb.register(MetricDescriptor::counter(
            "driver/admission/shed",
            retention,
        ))
        .expect("fresh tsdb");
        tsdb.register(MetricDescriptor::counter(
            "driver/admission/abandoned",
            retention,
        ))
        .expect("fresh tsdb");
        // Install the streamed counter series. The sink accumulated
        // exactly the point streams the retired dense-grid scan produced
        // — skip-zero per-service rows, aligned driver streams on every
        // window with at least one call — as the `streamagg` equivalence
        // proptest pins, so the resulting TSDB is byte-identical.
        sink.install(&mut tsdb, |svc| {
            self.catalog.service(ServiceId(svc)).name.clone()
        })
        .expect("registered");
        for svc in self.catalog.services().iter().take(12) {
            for site in svc.clusters.iter().take(4) {
                if let Some(s) = self.sites.get(svc.id.0, site.0) {
                    let labels = Labels::from_pairs([
                        ("service", svc.name.clone()),
                        ("cluster", format!("{}", site.0)),
                    ]);
                    let mut t = SimTime::ZERO;
                    while t.as_nanos() < scale.duration.as_nanos() {
                        tsdb.write(
                            "machine/cpu/utilization",
                            labels.clone(),
                            t,
                            MetricValue::Gauge(s.load.sample(t).cpu_util),
                        )
                        .expect("registered");
                        t += window;
                    }
                }
            }
        }
        phases.record("tsdb", tsdb_start.elapsed().as_secs_f64() * 1e3);

        let telemetry = RunTelemetry {
            counters,
            per_shard,
            phases,
            shards_used: shards,
            threads_used: threads,
        };

        FleetRun {
            catalog: self.catalog,
            topology: self.topology,
            store,
            profiler,
            errors,
            tsdb,
            method_calls,
            method_bytes,
            sites: self.sites,
            total_spans,
            telemetry,
            config: self.config,
        }
    }
}

/// One simulation shard: the mutable half of the driver.
///
/// A shard owns every piece of state that root expansion writes — its own
/// [`Network`] (whose congestion trajectories are seed-derived and hence
/// identical in every shard), trace store, profilers, and counters — plus
/// a shared reference to the immutable [`Driver`] world. Shards never
/// communicate while running; their outputs are folded in shard-id order
/// by [`Shard::absorb`].
struct Shard<'a> {
    world: &'a Driver,
    network: Network,
    store: TraceStore,
    profiler: CycleProfiler,
    errors: ErrorAccounting,
    method_calls: Vec<u64>,
    method_bytes: Vec<u64>,
    /// Streaming window accumulator: the open window's dense per-service
    /// column plus root-keyed scalar deltas, O(services) resident.
    agg: streamagg::WindowAgg,
    /// Windows this shard closed that are not yet known to be final:
    /// ascending, sparse. Shard 0 streams its mid-run closures straight
    /// to the sink, so this holds at most its final open window; other
    /// shards buffer until the ordered fold proves their windows final.
    closed: Vec<streamagg::ClosedWindow>,
    /// The shared sink, present only on the shard allowed to stream
    /// live (shard 0 — every window it closes mid-run precedes every
    /// other shard's first window).
    live: Option<&'a streamagg::WindowSink>,
    /// Fault plane: seed-derived failure episode processes, identical in
    /// every shard. `None` when the scenario injects nothing.
    faults: Option<FaultPlane>,
    /// Correlated-incident plane: shared cross-entity incidents whose
    /// per-entity trajectories are seed-derived and hence identical in
    /// every shard. `None` when the scenario has no incident layer.
    incidents: Option<IncidentPlane>,
    /// Closed-loop control plane. Its controller timelines are pure
    /// functions of `(seed, incident spec, window index)` — it owns a
    /// *private* incident-plane copy and never reads shard-local
    /// counters, so every shard reconstructs identical decisions. `None`
    /// for open-loop scenarios.
    control: Option<ControlPlane>,
    /// Reusable span buffer: every trace expands into this arena, so tree
    /// expansion reuses capacity across roots. Sampled traces copy the
    /// exact-length spans out; unsampled traces cost no allocation.
    arena: Vec<SpanRecord>,
    /// Deterministic self-telemetry counters.
    counters: ShardCounters,
    total_spans: u64,
}

impl<'a> Shard<'a> {
    fn new(world: &'a Driver) -> Self {
        let n_methods = world.catalog.num_methods();
        Shard {
            world,
            network: Network::new(
                world.topology.clone(),
                world.config.net.clone(),
                world.config.scale.seed,
            ),
            store: TraceStore::new(),
            profiler: CycleProfiler::new()
                .with_per_method_cap(world.config.scale.profiler_sample_cap),
            errors: ErrorAccounting::new(),
            method_calls: vec![0; n_methods],
            method_bytes: vec![0; n_methods],
            agg: streamagg::WindowAgg::new(world.catalog.num_services()),
            closed: Vec::new(),
            live: None,
            faults: FaultPlane::new(&world.config.faults, world.config.scale.seed),
            incidents: world.config.faults.incidents.and_then(|spec| {
                IncidentPlane::new(&spec, world.config.scale.seed, world.region_of.clone())
            }),
            control: ControlPlane::new(
                &world.config.faults,
                world.config.scale.seed,
                world.region_of.clone(),
                rpclens_tsdb::DEFAULT_SAMPLE_PERIOD,
            ),
            arena: Vec::new(),
            counters: ShardCounters::new(),
            total_spans: 0,
        }
    }

    /// Expands a contiguous chunk of roots whose global sequence numbers
    /// start at `base_seq`.
    ///
    /// Each trace draws from `master_rng.substream(seq)` with its *global*
    /// sequence number, and the sampling decision also uses `seq`, so a
    /// root produces exactly the same spans no matter which shard runs it.
    fn run_roots(&mut self, roots: &[RootArrival], base_seq: usize, collector: &TraceCollector) {
        let window = rpclens_tsdb::DEFAULT_SAMPLE_PERIOD;
        // Root-deadline constants, hoisted out of the per-root loop: the
        // budget bounds are scenario state, so `lo` and the `hi / lo`
        // ratio are invariant across roots — the same f64s the per-root
        // computation produced, leaving one draw and one `powf` per root.
        let deadline_consts = self.world.config.faults.deadlines.map(|ds| {
            let lo = ds.min_budget.as_secs_f64();
            let hi = ds.max_budget.as_secs_f64().max(lo);
            (lo, hi / lo)
        });
        for (i, root) in roots.iter().enumerate() {
            let seq = base_seq + i;
            // Expand into the shard's reusable arena: capacity carries
            // over from previous traces, so the steady state allocates
            // nothing during tree expansion.
            let mut ctx = TraceCtx {
                spans: std::mem::take(&mut self.arena),
                root_start: root.at,
                budget: self.world.config.max_trace_spans,
                rng: self.world.master_rng.substream(seq as u64),
                seq: seq as u64,
                errors: 0,
                congested_wire: 0,
                retry_budget: self
                    .world
                    .config
                    .faults
                    .retry
                    .filter(|_| self.world.config.retry_budget_enabled)
                    .map(|rs| RetryBudget::new(rs.budget_ratio, rs.budget_cap)),
                retries: 0,
                admission_shed: 0,
                admission_abandoned: 0,
            };
            // Root deadline: log-uniform between the budget bounds —
            // the scenario-wide bounds in global mode (spanning
            // interactive to batch callers), the root method's own
            // family band in `per_family` mode. Drawn only when the
            // scenario has deadlines, so `none` adds no draws; either
            // mode costs exactly one draw per root.
            let deadline = match &self.world.deadline_bands {
                Some(bands) => {
                    let (lo, ratio) = bands[root.method.0 as usize];
                    let budget = lo * ratio.powf(ctx.rng.next_f64());
                    Some(Deadline::after(root.at, SimDuration::from_secs_f64(budget)))
                }
                None => deadline_consts.map(|(lo, ratio)| {
                    let budget = lo * ratio.powf(ctx.rng.next_f64());
                    Deadline::after(root.at, SimDuration::from_secs_f64(budget))
                }),
            };
            let client_util =
                self.world.client_profiles[root.client_cluster.0 as usize].cpu_util_at(root.at);
            let entry_service = self.world.catalog.hot(root.method).service;
            let outcome = self.place_call(
                &mut ctx,
                root.method,
                entry_service,
                root.client_cluster,
                client_util,
                ROOT_PARENT,
                root.at,
                0,
                false,
                deadline,
            );
            self.counters.roots += 1;
            self.counters
                .root_latency_us
                .record(outcome.finish.since(root.at).as_nanos() / 1_000);
            // Window accounting for every span, sampled or not. All of a
            // root's spans land in the *root's* window; roots arrive in
            // time order, so crossing a window boundary closes the open
            // window — final immediately for the live shard, buffered
            // for the ordered fold otherwise.
            let w = (root.at.as_nanos() / window.as_nanos()) as usize;
            if let Some(cw) = self.agg.advance(w) {
                match self.live {
                    Some(sink) => sink.push(&cw),
                    None => self.closed.push(cw),
                }
            }
            for span in &ctx.spans {
                self.agg.add_call(span.service.0);
            }
            self.agg.add_scalars(
                ctx.errors,
                ctx.congested_wire,
                ctx.retries,
                ctx.admission_shed,
                ctx.admission_abandoned,
            );
            // Retention: sampling decides whether the spans are *kept*,
            // never whether they are simulated. A sampled trace copies
            // the exact-length span list out of the arena.
            let mut spans = std::mem::take(&mut ctx.spans);
            if collector.should_sample(seq as u64) && !spans.is_empty() {
                self.counters.traces_sampled += 1;
                self.store.add(TraceData::new(root.at, spans.clone()));
            }
            spans.clear();
            self.arena = spans;
        }
    }

    /// Closes the final open window into the shard's closed-window log.
    ///
    /// Called once, after the shard's last root. Even the live shard
    /// buffers its final window instead of streaming it: the next shard
    /// in id order may have roots in the same window, and only the
    /// ordered fold can coalesce the two halves.
    fn seal(&mut self) {
        if let Some(cw) = self.agg.finish() {
            self.closed.push(cw);
        }
    }

    /// Folds `other` (the next shard in id order) into this one.
    fn absorb(&mut self, mut other: Shard<'_>) {
        self.store.merge(other.store);
        self.profiler.merge(other.profiler);
        self.errors.merge(&other.errors);
        for (a, b) in self.method_calls.iter_mut().zip(&other.method_calls) {
            *a += b;
        }
        for (a, b) in self.method_bytes.iter_mut().zip(&other.method_bytes) {
            *a += b;
        }
        streamagg::absorb_closed(&mut self.closed, std::mem::take(&mut other.closed));
        self.counters.absorb(&other.counters);
        self.total_spans += other.total_spans;
    }

    /// Places a call: runs one attempt (primary + optional hedge) and,
    /// when the scenario retries, wraps it in the client resilience loop
    /// — jittered exponential backoff gated by the per-trace
    /// [`RetryBudget`], with load-balancer failover away from the failed
    /// placement. Returns the caller-observed outcome (the final
    /// attempt's finish; earlier failed attempts and backoff waits all
    /// precede it in simulated time).
    #[allow(clippy::too_many_arguments)]
    fn place_call(
        &mut self,
        ctx: &mut TraceCtx,
        method: MethodId,
        client_service: ServiceId,
        client_cluster: ClusterId,
        client_util: f64,
        parent: u32,
        start: SimTime,
        depth: u32,
        detached: bool,
        deadline: Option<Deadline>,
    ) -> CallOutcome {
        let retry_spec = self.world.config.faults.retry;
        let mut attempt_start = start;
        let mut avoid: Option<Avoid> = None;
        let mut attempt = 0u32;
        loop {
            let res = self.place_attempt(
                ctx,
                method,
                client_service,
                client_cluster,
                client_util,
                parent,
                attempt_start,
                depth,
                detached,
                deadline,
                avoid,
            );
            // No retry configuration: the attempt is the call.
            let Some(spec) = retry_spec else {
                return res.outcome;
            };
            let Some(err) = res.error else {
                // Success earns the trace's budget a fractional token.
                if let Some(budget) = ctx.retry_budget.as_mut() {
                    budget.on_success();
                }
                return res.outcome;
            };
            if !BackoffPolicy::retryable(err) {
                return res.outcome;
            }
            let next_attempt = attempt + 1;
            if next_attempt > spec.backoff.max_attempts {
                return res.outcome;
            }
            // The token bucket is what stops a retry storm: once failures
            // outpace `ratio` x successes, further retries are denied.
            if let Some(budget) = ctx.retry_budget.as_mut() {
                if !budget.try_spend() {
                    self.counters.resilience.retries_denied += 1;
                    return res.outcome;
                }
            }
            let delay = spec
                .backoff
                .delay(next_attempt, &mut ctx.rng)
                .unwrap_or(SimDuration::ZERO);
            let retry_start = res.outcome.finish + delay;
            // A retry that would start past the deadline is pointless.
            if let Some(d) = deadline {
                if d.expired(retry_start) {
                    return res.outcome;
                }
            }
            self.counters.resilience.retries_issued += 1;
            ctx.retries += 1;
            avoid = res.server.map(|(cluster, machine)| Avoid {
                cluster,
                machine,
                cluster_level: res.cluster_level,
            });
            attempt_start = retry_start;
            attempt = next_attempt;
        }
    }

    /// One attempt of a call, wrapping `simulate_call` with hedging for
    /// eligible leaf methods. Reports the winner's error and placement so
    /// the retry loop can back off and fail over.
    #[allow(clippy::too_many_arguments)]
    fn place_attempt(
        &mut self,
        ctx: &mut TraceCtx,
        method: MethodId,
        client_service: ServiceId,
        client_cluster: ClusterId,
        client_util: f64,
        parent: u32,
        start: SimTime,
        depth: u32,
        detached: bool,
        deadline: Option<Deadline>,
        avoid: Option<Avoid>,
    ) -> AttemptResult {
        let hedge = self.world.catalog.hot(method).hedge;
        let primary = self.simulate_call(
            ctx,
            method,
            client_service,
            client_cluster,
            client_util,
            parent,
            start,
            depth,
            detached,
            deadline,
            avoid,
        );
        let primary_result = AttemptResult {
            outcome: CallOutcome {
                finish: primary.outcome.finish,
            },
            error: primary.error,
            server: primary.server,
            cluster_level: primary.cluster_level,
        };
        let Some(primary_idx) = primary.span else {
            return primary_result;
        };
        if !hedge.enabled || !self.world.config.hedging_enabled {
            return primary_result;
        }
        let primary_latency = primary.outcome.finish.since(start);
        let Some(delay) = hedge.decide(primary_latency, &mut ctx.rng) else {
            return primary_result;
        };
        // Issue the hedge copy after `delay`.
        self.counters.hedges_issued += 1;
        let hedge_start = start + delay;
        let hedged = self.simulate_call(
            ctx,
            method,
            client_service,
            client_cluster,
            client_util,
            parent,
            hedge_start,
            depth,
            detached,
            deadline,
            avoid,
        );
        let Some(hedge_idx) = hedged.span else {
            return primary_result;
        };
        let hedge_latency = hedged.outcome.finish.since(hedge_start);
        let resolution = resolve_hedge(primary_latency, hedge_latency, delay);
        let (loser_idx, loser_run) = if resolution.hedge_won {
            (primary_idx, resolution.loser_run_time)
        } else {
            (hedge_idx, resolution.loser_run_time)
        };
        let winner = if resolution.hedge_won {
            &hedged
        } else {
            &primary
        };
        let winner_result = AttemptResult {
            outcome: CallOutcome {
                finish: start + resolution.winner_latency,
            },
            error: winner.error,
            server: winner.server,
            cluster_level: winner.cluster_level,
        };
        // Cancel the loser: mark its span, charge the cycles its *whole
        // subtree* performed before the cancellation (the replication
        // fan-out a cancelled Write already triggered is wasted too —
        // this is what makes cancellations cost more cycles per error
        // than any other class, Fig. 23).
        let loser = &mut ctx.spans[loser_idx as usize];
        loser.error = Some(ErrorKind::Cancelled);
        loser.hedged = true;
        ctx.spans[hedge_idx as usize].hedged = true;
        let _ = loser_run;
        // Depth-first expansion makes the loser's subtree a contiguous
        // index range: it ends at the first span whose parent precedes
        // the loser (or at another root, for hedged root calls).
        let subtree_start = loser_idx as usize;
        let mut wasted_kilocycles = ctx.spans[subtree_start].kilocycles as u64;
        for span in &ctx.spans[subtree_start + 1..] {
            if span.is_root() || (span.parent as usize) < subtree_start {
                break;
            }
            wasted_kilocycles += span.kilocycles as u64;
        }
        let work_fraction =
            rpclens_rpcstack::error::ErrorProfile::work_fraction(ErrorKind::Cancelled);
        let wasted = (wasted_kilocycles as f64 * 1000.0 * work_fraction) as u64;
        self.errors.record_error(ErrorKind::Cancelled, wasted);
        winner_result
    }

    /// Simulates one call (and its subtree). Reports the outcome, span
    /// index (`None` if the span budget was exhausted), final error, and
    /// placement.
    #[allow(clippy::too_many_arguments)]
    fn simulate_call(
        &mut self,
        ctx: &mut TraceCtx,
        method: MethodId,
        client_service: ServiceId,
        client_cluster: ClusterId,
        client_util: f64,
        parent: u32,
        start: SimTime,
        depth: u32,
        detached: bool,
        deadline: Option<Deadline>,
        avoid: Option<Avoid>,
    ) -> SimResult {
        if ctx.budget == 0 {
            return SimResult {
                outcome: CallOutcome { finish: start },
                span: None,
                error: None,
                server: None,
                cluster_level: false,
            };
        }
        ctx.budget -= 1;
        self.total_spans += 1;
        self.counters.spans += 1;
        self.counters.max_depth = self.counters.max_depth.max(u64::from(depth));

        // Borrow the immutable world through its own lifetime so the
        // hot header, edge slice, and site borrows stay live across the
        // `&mut self` recursion below — no clones needed anywhere.
        let world = self.world;
        let hot = world.catalog.hot(method);
        let sh = world.catalog.service_hot(hot.service);
        self.method_calls[method.0 as usize] += 1;

        // Reserve the span slot so parents precede children.
        let span_idx = ctx.spans.len() as u32;
        ctx.spans
            .push(SpanBuilder::new(method, hot.service, client_cluster, client_cluster).build());

        let mut t = start;
        let mut breakdown = LatencyBreakdown::new();

        // 1. Client send queue.
        let csq = world.soft_queue.delay(client_util, &mut ctx.rng);
        breakdown.set(LatencyComponent::ClientSendQueue, csq);
        t += csq;

        // 2. Request stack processing (client serialize + server parse,
        // pipelined).
        let class = sh.class;
        let req_bytes = hot.sample_request_bytes(&mut ctx.rng);
        let req_proc = world.cost.stack_latency(req_bytes, class, 1.0);
        breakdown.set(LatencyComponent::RequestProcessing, req_proc);
        t += req_proc;

        // 3. Server placement: cluster (latency-aware) then machine. A
        // retry steers away from the failed placement (load-balancer
        // failover); `avoid` is only ever `Some` when a retry scenario is
        // active, so the fault-free draw sequence is unchanged.
        let deployed = &world.catalog.service(hot.service).clusters;
        let mut server_cluster =
            world.choose_cluster(hot.service, deployed, client_cluster, &sh, &mut ctx.rng);
        if let Some(av) = avoid {
            if av.cluster_level && deployed.len() > 1 {
                if let Some(pos) = deployed.iter().position(|&c| c == av.cluster) {
                    let mut j = ctx.rng.index(deployed.len() - 1);
                    if j >= pos {
                        j += 1;
                    }
                    server_cluster = deployed[j];
                    self.counters.resilience.failovers += 1;
                }
            }
        }
        // Load-balancer weight shift: when the control plane flagged the
        // chosen path as degraded at this window's boundary, the client
        // re-picks among the remaining deployments — the same `Avoid`
        // failover path a retry takes, but *before* the request is ever
        // sent. Only an active controller draws, so scenarios without
        // one keep their draw sequence.
        if deployed.len() > 1 {
            if let Some(cp) = self.control.as_mut() {
                let wan = world
                    .topology
                    .path_class(client_cluster, server_cluster)
                    .is_wan();
                if cp.path_degraded(client_cluster.0, server_cluster.0, wan, t) {
                    if let Some(pos) = deployed.iter().position(|&c| c == server_cluster) {
                        let mut j = ctx.rng.index(deployed.len() - 1);
                        if j >= pos {
                            j += 1;
                        }
                        server_cluster = deployed[j];
                        self.counters.control.lb_shifts += 1;
                    }
                }
            }
        }
        let site = world.site(hot.service, server_cluster);
        let mut mi = ctx.rng.index(site.machines.len());
        if let Some(av) = avoid {
            if !av.cluster_level
                && server_cluster == av.cluster
                && av.machine < site.machines.len()
                && site.machines.len() > 1
            {
                let mut j = ctx.rng.index(site.machines.len() - 1);
                if j >= av.machine {
                    j += 1;
                }
                mi = j;
                self.counters.resilience.failovers += 1;
            }
        }

        // 3b. Causal availability: a WAN blackout on the path, a drained
        // cluster, or a crashed machine makes the target `Unavailable` —
        // the request is sent and bounces with the transport-level error.
        // A brownout instead adds excess latency to both wire crossings.
        let mut causal: Option<ErrorKind> = None;
        let mut cluster_level = false;
        let mut brownout = SimDuration::ZERO;
        let mut overload_factor: Option<f64> = None;
        if let Some(plane) = self.faults.as_mut() {
            let wan = world
                .topology
                .path_class(client_cluster, server_cluster)
                .is_wan();
            match plane.partition_state(client_cluster.0, server_cluster.0, wan, t) {
                PartitionState::Blackout => {
                    causal = Some(ErrorKind::Unavailable);
                    cluster_level = true;
                }
                PartitionState::Brownout => {
                    if let Some(spec) = plane.scenario().wan_partition {
                        brownout = spec.brownout_excess;
                    }
                }
                PartitionState::Connected => {}
            }
            if causal.is_none() && plane.cluster_drained(server_cluster.0, t) {
                causal = Some(ErrorKind::Unavailable);
                cluster_level = true;
            }
            if causal.is_none() && plane.machine_crashed(hot.service.0, server_cluster.0, mi, t) {
                causal = Some(ErrorKind::Unavailable);
            }
            overload_factor = plane.overload_factor(hot.service.0, server_cluster.0, t);
        }
        // 3c. Incident composition (precedence rules in
        // `crate::incident`): blackout from either plane beats brownout;
        // both-brownout takes the larger excess; a drain from either
        // plane is a drain; overload factors never stack — the strongest
        // front wins.
        if let Some(inc) = self.incidents.as_mut() {
            let wan = world
                .topology
                .path_class(client_cluster, server_cluster)
                .is_wan();
            match inc.partition_state(client_cluster.0, server_cluster.0, wan, t) {
                PartitionState::Blackout => {
                    causal = Some(ErrorKind::Unavailable);
                    cluster_level = true;
                }
                PartitionState::Brownout => {
                    brownout = brownout.max(inc.brownout_excess());
                }
                PartitionState::Connected => {}
            }
            if causal.is_none() && inc.cluster_drained(server_cluster.0, t) {
                causal = Some(ErrorKind::Unavailable);
                cluster_level = true;
            }
            if let Some(f) = inc.overload_factor(server_cluster.0, t) {
                overload_factor = Some(overload_factor.map_or(f, |g| g.max(f)));
            }
        }
        // The autoscaler's added capacity divides the effective surge:
        // a fully absorbed surge (effective factor at or below 1) is no
        // overload at all.
        if let Some(f) = overload_factor {
            if let Some(cp) = self.control.as_mut() {
                let eff = f / cp.capacity_factor(server_cluster.0, t);
                overload_factor = (eff > 1.0).then_some(eff);
            }
        }

        // 4. Request network wire.
        let wire_req = world.cost.wire_bytes(req_bytes, sh.compressed);
        let (req_net, req_congested) = self.network.one_way_latency_observed(
            client_cluster,
            server_cluster,
            wire_req,
            t,
            &mut ctx.rng,
        );
        self.counters.wire.record(req_congested);
        ctx.congested_wire += u64::from(req_congested);
        let req_net = req_net + brownout;
        breakdown.set(LatencyComponent::RequestNetworkWire, req_net);
        t += req_net;

        // 5. Server receive queue: scheduler wakeup + M/G/k wait at the
        // machine's current utilization.
        let machine = &site.machines[mi];
        let util = site.machine_util(mi, t);
        // One profile sample feeds both wakeup and slowdown (the old
        // path sampled the same (profile, t) twice).
        let machine_vars = machine.exogenous(t);
        let wakeup = machine.wakeup_latency_from(&machine_vars, &mut ctx.rng);
        let slowdown = machine.slowdown_from(&machine_vars);
        let speed = machine.config().speed;
        // Reserved-core pools are isolated from the machine's ambient
        // load; only a residual coupling remains.
        let reserved = sh.reserved_cores && world.config.reserved_cores_enabled;
        let mut pool_util = if reserved { util * 0.25 } else { util };
        // An overload surge inflates the pool's ambient utilization,
        // clamped below saturation so the M/G/k wait stays finite. A
        // bounded admission queue enforces its own, tighter utilization
        // cap — the queue refuses to fill past it.
        let admission = if overload_factor.is_some() {
            self.control.as_ref().and_then(ControlPlane::admission)
        } else {
            None
        };
        if let Some(factor) = overload_factor {
            let cap = admission.map_or(0.98, |a| a.util_cap);
            pool_util = (pool_util * factor).min(cap);
        }
        let queue_wait =
            site.queue
                .sample_wait_observed(pool_util, &mut ctx.rng, &mut self.counters.queue);
        // Ambient load shedding: while surging, waits past the shed
        // threshold are rejected with `NoResource` instead of being
        // served. An explicit admission queue supersedes this rule — its
        // verdict (admit/shed/abandon) is applied at injection below.
        let shed = admission.is_none()
            && overload_factor.is_some()
            && self
                .faults
                .as_ref()
                .and_then(|p| p.scenario().overload)
                .map(|spec| spec.shed_wait)
                .or_else(|| self.incidents.as_ref().and_then(IncidentPlane::shed_wait))
                .is_some_and(|w| queue_wait > w);
        let srq = wakeup + queue_wait;
        breakdown.set(LatencyComponent::ServerRecvQueue, srq);
        t += srq;
        let handler_start = t;

        // 6. Error injection. Causal errors (unreachable or shedding
        // targets) pre-empt the residual statistical draw; hedging
        // cancellations come from place_attempt. An active admission
        // queue turns the ambient shed rule into explicit verdicts:
        // waits past the shed bound are refused (`NoResource`), waits
        // past the caller's patience are abandoned (`Aborted`), and
        // admitted + shed + abandoned always equals offered.
        let injected = if let Some(kind) = causal {
            self.counters.resilience.causal_unavailable += 1;
            Some(kind)
        } else if let Some(spec) = admission {
            self.counters.control.admission_offered += 1;
            match admission_verdict(&spec, queue_wait) {
                AdmissionVerdict::Admitted => world.config.errors.draw(&mut ctx.rng),
                AdmissionVerdict::Shed => {
                    self.counters.control.admission_shed += 1;
                    self.counters.resilience.load_sheds += 1;
                    ctx.admission_shed += 1;
                    cluster_level = true;
                    Some(ErrorKind::NoResource)
                }
                AdmissionVerdict::Abandoned => {
                    self.counters.control.admission_abandoned += 1;
                    ctx.admission_abandoned += 1;
                    Some(ErrorKind::Aborted)
                }
            }
        } else if shed {
            self.counters.resilience.load_sheds += 1;
            cluster_level = true;
            Some(ErrorKind::NoResource)
        } else {
            world.config.errors.draw(&mut ctx.rng)
        };
        if injected.is_some() {
            self.counters.errors_injected += 1;
            ctx.errors += 1;
        }

        // 7. Handler compute.
        let (nominal, fast) = hot.sample_compute(&mut ctx.rng);
        let nominal = match injected {
            Some(kind) => nominal.mul_f64(ErrorProfile::work_fraction(kind)),
            None => nominal,
        };
        let compute_wall = nominal.mul_f64(slowdown / speed);
        t += compute_wall;

        // 8. Children: parallel fan-out per firing edge; the handler waits
        // for the slowest child (partition/aggregate). The edge slice
        // lives in the catalog's shared CSR table, so recursion borrows
        // it instead of cloning a `Vec` per span.
        let mut children_end = t;
        // Deadline propagation: children inherit the remaining budget
        // minus the hop margin; when the remainder dips below the policy
        // floor the handler fails fast and skips the fan-out entirely.
        let mut skip_children = false;
        let mut child_deadline = None;
        if let (Some(d), Some(ds)) = (deadline, world.config.faults.deadlines) {
            match ds.policy.child(d, t) {
                Some(cd) => child_deadline = Some(cd),
                None => skip_children = true,
            }
        }
        if injected.is_none() && !fast && !skip_children && depth < world.config.max_depth {
            for edge in world.catalog.edges(method) {
                if !ctx.rng.chance(edge.prob) {
                    continue;
                }
                let k = edge.fanout.sample(&mut ctx.rng);
                for _ in 0..k {
                    if ctx.budget == 0 {
                        break;
                    }
                    let child = self.place_call(
                        ctx,
                        edge.target,
                        hot.service,
                        server_cluster,
                        util,
                        span_idx,
                        t,
                        depth + 1,
                        !edge.blocking,
                        child_deadline,
                    );
                    // Fire-and-forget edges do not extend the parent.
                    if edge.blocking {
                        children_end = children_end.max(child.finish);
                    }
                }
            }
        }
        let app = children_end.since(handler_start);
        breakdown.set(LatencyComponent::ServerApplication, app);
        let mut t = children_end;

        // 9. Response path.
        let resp_bytes = hot.sample_response_bytes(&mut ctx.rng);
        // Reserved-core services run dedicated network threads, so their
        // send queues do not track the machine's overall utilization.
        let send_util = if reserved { util * 0.3 } else { util };
        let ssq = world.soft_queue.delay(send_util, &mut ctx.rng);
        breakdown.set(LatencyComponent::ServerSendQueue, ssq);
        t += ssq;
        let resp_proc = world.cost.stack_latency(resp_bytes, class, slowdown);
        breakdown.set(LatencyComponent::ResponseProcessing, resp_proc);
        t += resp_proc;
        let wire_resp = world.cost.wire_bytes(resp_bytes, sh.compressed);
        let (resp_net, resp_congested) = self.network.one_way_latency_observed(
            server_cluster,
            client_cluster,
            wire_resp,
            t,
            &mut ctx.rng,
        );
        self.counters.wire.record(resp_congested);
        ctx.congested_wire += u64::from(resp_congested);
        let resp_net = resp_net + brownout;
        breakdown.set(LatencyComponent::ResponseNetworkWire, resp_net);
        t += resp_net;
        let crq = world.soft_queue.delay(client_util, &mut ctx.rng);
        breakdown.set(LatencyComponent::ClientRecvQueue, crq);
        t += crq;

        // 9b. Deadline check: the client observes the response only after
        // its deadline fired — the work was all done (and is charged in
        // full below, `work_fraction(DeadlineExceeded) = 1.0`), but the
        // caller sees `DeadlineExceeded`. Causal errors keep precedence.
        let injected = match (injected, deadline) {
            (None, Some(d)) if d.expired(t) => {
                self.counters.resilience.deadline_exceeded += 1;
                self.counters.errors_injected += 1;
                ctx.errors += 1;
                Some(ErrorKind::DeadlineExceeded)
            }
            (injected, _) => injected,
        };

        // 10. Cycle accounting: the server burns its application cycles
        // (nominal compute normalized across CPU generations) plus the
        // receive side of the request and the send side of the response;
        // the *client's service* burns the mirror-image stack cycles.
        // This split is why storage services move most of the fleet's
        // bytes yet burn few of its cycles (Fig. 8).
        let mut cost = CycleCost::new();
        let cpu_secs = hot.cpu_work.sample(&mut ctx.rng)
            * match injected {
                Some(kind) => ErrorProfile::work_fraction(kind),
                None => 1.0,
            };
        cost.add(
            CycleCategory::Application,
            (cpu_secs * world.cost.config().clock_hz) as u64,
        );
        cost.merge(&world.cost.receiver_cost(req_bytes, class));
        cost.merge(&world.cost.sender_cost(resp_bytes, class));
        self.profiler.record(
            hot.service.0,
            method.0,
            &cost,
            speed,
            rpclens_profiler::sample_tag(ctx.seq, span_idx),
        );
        let mut client_cost = world.cost.sender_cost(req_bytes, class);
        client_cost.merge(&world.cost.receiver_cost(resp_bytes, class));
        self.profiler
            .record_client_side(client_service.0, &client_cost);
        self.method_bytes[method.0 as usize] += req_bytes + resp_bytes;

        // 11. Error accounting.
        self.errors.record_rpc();
        if let Some(kind) = injected {
            self.errors.record_error(kind, cost.total());
        }

        // 12. Finalize the span record.
        let mut builder = SpanBuilder::new(method, hot.service, client_cluster, server_cluster)
            .parent(parent)
            .start_offset(start.since(ctx.root_start))
            .breakdown(breakdown)
            .sizes(req_bytes, resp_bytes)
            .cycles(cost.total())
            .detached(detached);
        if let Some(kind) = injected {
            builder = builder.error(kind);
        }
        ctx.spans[span_idx as usize] = builder.build();

        SimResult {
            outcome: CallOutcome { finish: t },
            span: Some(span_idx),
            error: injected,
            server: Some((server_cluster, mi)),
            cluster_level,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpclens_simcore::stats::{percentile, sorted_finite};
    use rpclens_trace::query::MethodQuery;
    use std::collections::HashMap;

    fn tiny_run() -> FleetRun {
        let scale = SimScale {
            name: "test",
            total_methods: 320,
            roots: 6_000,
            duration: SimDuration::from_hours(24),
            trace_sample_rate: 1,
            profiler_sample_cap: 10_000,
            seed: 11,
        };
        run_fleet(FleetConfig::at_scale(scale))
    }

    #[test]
    fn run_produces_traces_and_counters() {
        let run = tiny_run();
        assert!(run.store.len() > 5_000, "{} traces", run.store.len());
        assert!(run.total_spans > 20_000, "{} spans", run.total_spans);
        assert_eq!(run.total_calls(), run.total_spans);
        assert!(run.profiler.total_cycles() > 0);
        assert!(run.errors.total_rpcs() == run.total_spans);
    }

    #[test]
    fn breakdown_components_are_all_exercised() {
        let run = tiny_run();
        let mut totals = [0u64; 9];
        for trace in run.store.traces() {
            for span in &trace.spans {
                for (i, c) in LatencyComponent::ALL.iter().enumerate() {
                    totals[i] += span.component(*c).as_nanos();
                }
            }
        }
        for (i, c) in LatencyComponent::ALL.iter().enumerate() {
            assert!(totals[i] > 0, "component {c:?} never non-zero");
        }
        // Application dominates in aggregate (the paper's 2% mean tax is
        // on completion time; here we just require dominance).
        let app = totals[4];
        let tax: u64 = totals.iter().sum::<u64>() - app;
        assert!(app > tax, "app {app} vs tax {tax}");
    }

    #[test]
    fn parents_wait_for_children() {
        let run = tiny_run();
        let mut checked = 0;
        for trace in run.store.traces() {
            for (i, span) in trace.spans.iter().enumerate().skip(1) {
                if span.is_root() {
                    // Hedge copies of a root call also carry ROOT_PARENT.
                    continue;
                }
                let parent = &trace.spans[span.parent as usize];
                // A child starts after its parent and finishes before the
                // parent's application phase can end.
                assert!(span.start_offset() >= parent.start_offset());
                let parent_end = parent.start_offset() + parent.total_latency();
                let child_end = span.start_offset() + span.total_latency();
                // Children may outlive the parent only when cancelled
                // (hedge loser) — their wall time no longer gates it.
                if span.error.is_none() && !span.detached {
                    assert!(
                        child_end.as_nanos() <= parent_end.as_nanos() + 1000,
                        "child {i} ends {child_end} after parent end {parent_end}"
                    );
                }
                checked += 1;
            }
        }
        assert!(checked > 1_000, "only {checked} child spans checked");
    }

    #[test]
    fn hedging_produces_cancellations() {
        let run = tiny_run();
        let cancelled = run
            .errors
            .kinds_by_count()
            .iter()
            .find(|(k, _)| *k == ErrorKind::Cancelled)
            .map(|(_, c)| *c)
            .unwrap_or(0);
        assert!(cancelled > 0, "no hedging cancellations at all");
        // And cancelled spans exist in the store, flagged hedged.
        let mut found = false;
        for t in run.store.traces() {
            for s in &t.spans {
                if s.error == Some(ErrorKind::Cancelled) {
                    assert!(s.hedged);
                    found = true;
                }
            }
        }
        assert!(found);
    }

    #[test]
    fn error_rate_is_in_band() {
        let run = tiny_run();
        let rate = run.errors.error_rate();
        // Paper: 1.9% total. Accept a generous band at tiny scale.
        assert!((0.005..0.05).contains(&rate), "error rate {rate}");
    }

    #[test]
    fn network_disk_is_most_popular_service() {
        let run = tiny_run();
        let mut by_service: HashMap<ServiceId, u64> = HashMap::new();
        for (m, &c) in run.method_calls.iter().enumerate() {
            let svc = run.catalog.method(MethodId(m as u32)).service;
            *by_service.entry(svc).or_insert(0) += c;
        }
        let (&top, _) = by_service.iter().max_by_key(|(_, &c)| c).unwrap();
        assert_eq!(run.catalog.service(top).name, "NetworkDisk");
    }

    #[test]
    fn cross_cluster_calls_exist_and_are_slower() {
        let run = tiny_run();
        let mut local = Vec::new();
        let mut remote = Vec::new();
        for t in run.store.traces() {
            for s in &t.spans {
                if s.error.is_some() {
                    continue;
                }
                let net = s
                    .component(LatencyComponent::RequestNetworkWire)
                    .as_secs_f64();
                if s.client_cluster == s.server_cluster {
                    local.push(net);
                } else {
                    remote.push(net);
                }
            }
        }
        assert!(remote.len() > 50, "only {} remote calls", remote.len());
        let l = sorted_finite(local);
        let r = sorted_finite(remote);
        let lm = percentile(&l, 0.5).unwrap();
        let rm = percentile(&r, 0.5).unwrap();
        assert!(rm > lm * 3.0, "local {lm}, remote {rm}");
    }

    #[test]
    fn determinism_same_seed_same_run() {
        let a = tiny_run();
        let b = tiny_run();
        assert_eq!(a.total_spans, b.total_spans);
        assert_eq!(a.method_calls, b.method_calls);
        assert_eq!(a.store.len(), b.store.len());
        // Spot-check a trace's spans match exactly.
        let ta = &a.store.traces()[7];
        let tb = &b.store.traces()[7];
        assert_eq!(ta.spans, tb.spans);
    }

    #[test]
    fn tsdb_contains_service_counters() {
        let run = tiny_run();
        let q = rpclens_tsdb::query::QueryEngine::new(&run.tsdb);
        let all = q.select("rpc/server/count", &rpclens_tsdb::query::LabelFilter::any());
        assert!(!all.is_empty(), "no counter series");
        // Rates must be positive somewhere.
        let has_rate = all.iter().any(|(_, s)| {
            rpclens_tsdb::query::QueryEngine::rate(s)
                .iter()
                .any(|(_, r)| *r > 0.0)
        });
        assert!(has_rate);
    }

    #[test]
    fn per_method_latency_is_wide() {
        // Within-method spread: P99/P1 must span orders of magnitude for
        // typical methods (Fig. 2).
        let run = tiny_run();
        let q = MethodQuery::default();
        let mut wide = 0;
        let mut total = 0;
        for (m, _) in q.eligible_methods(&run.store) {
            if let Some(samples) = q.latency_samples(&run.store, m) {
                let sorted = sorted_finite(samples);
                let p01 = percentile(&sorted, 0.01).unwrap();
                let p99 = percentile(&sorted, 0.99).unwrap();
                total += 1;
                if p99 / p01.max(1e-9) > 10.0 {
                    wide += 1;
                }
            }
        }
        assert!(total >= 20, "only {total} eligible methods");
        assert!(
            wide as f64 / total as f64 > 0.7,
            "only {wide}/{total} methods have wide spread"
        );
    }
}
