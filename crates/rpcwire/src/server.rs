//! The poll-driven wire server and its invocation semantics.
//!
//! A [`WireServer`] owns a [`ServerTransport`], a [`Handler`], and a
//! [`Semantics`] mode:
//!
//! - **At-most-once**: a bounded dedup cache keyed by
//!   `(client_id, request_id)` stores each request's encoded reply.
//!   Retransmissions hit the cache and are answered without re-executing
//!   the handler, so a request's effects happen at most once even when
//!   the network duplicates datagrams or clients retransmit.
//! - **At-least-once**: every delivered request executes the handler
//!   again (correct only for idempotent methods, as in classic
//!   sun-RPC-style servers); the client's retransmission loop guarantees
//!   execution happens at least once if any datagram ever gets through.
//!
//! `poll` drains pending datagrams without blocking, which keeps the
//! server usable from deterministic single-threaded tests; `serve` wraps
//! `poll` in a blocking loop for the real binary.

use crate::message::{self, Message, Status};
use crate::sink::{NullSink, SpanEvent, SpanEventKind, SpanSink};
use crate::transport::{ServerTransport, MAX_DATAGRAM};
use bytes::Bytes;
use std::collections::{HashMap, VecDeque};
use std::io;
use std::time::{Duration, Instant};

/// Invocation semantics the server applies to duplicate deliveries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Semantics {
    /// Dedup cache: execute each `(client, request)` at most once and
    /// replay the cached reply for duplicates.
    AtMostOnce,
    /// Re-execute the handler on every delivery.
    AtLeastOnce,
}

/// Application logic invoked per request.
pub trait Handler {
    /// Handles one decoded request, returning the response status and
    /// body.
    fn handle(&mut self, request: &message::Request) -> (Status, Vec<u8>);

    /// Whether this method's response body should attempt compression.
    fn compress_response(&self, method: u64) -> bool {
        let _ = method;
        true
    }
}

impl<F: FnMut(&message::Request) -> (Status, Vec<u8>)> Handler for F {
    fn handle(&mut self, request: &message::Request) -> (Status, Vec<u8>) {
        self(request)
    }
}

/// Server-side counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Datagrams received.
    pub received: u64,
    /// Handler executions.
    pub executed: u64,
    /// Duplicates answered from the dedup cache (at-most-once only).
    pub dedup_hits: u64,
    /// Datagrams that failed frame/envelope decoding (dropped; the
    /// client's retransmission recovers).
    pub decode_errors: u64,
    /// Responses sent (including cache replays).
    pub responses_sent: u64,
    /// Entries evicted from the dedup cache.
    pub evictions: u64,
}

/// A bounded FIFO dedup cache mapping `(client_id, request_id)` to the
/// encoded reply datagram.
#[derive(Debug)]
struct DedupCache {
    map: HashMap<(u64, u64), Bytes>,
    order: VecDeque<(u64, u64)>,
    capacity: usize,
}

impl DedupCache {
    fn new(capacity: usize) -> DedupCache {
        DedupCache {
            map: HashMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    fn get(&self, key: (u64, u64)) -> Option<&Bytes> {
        self.map.get(&key)
    }

    /// Inserts a reply, evicting the oldest entry at capacity. Returns
    /// how many entries were evicted (0 or 1).
    fn insert(&mut self, key: (u64, u64), reply: Bytes) -> u64 {
        let mut evicted = 0;
        if !self.map.contains_key(&key) {
            if self.order.len() == self.capacity {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                    evicted = 1;
                }
            }
            self.order.push_back(key);
        }
        self.map.insert(key, reply);
        evicted
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// The wire server. See the module docs for the semantics contract.
///
/// The `K` parameter is the [`SpanSink`] receiving span events; it
/// defaults to [`NullSink`] so untraced servers pay nothing.
pub struct WireServer<S: ServerTransport, H: Handler, K: SpanSink = NullSink> {
    transport: S,
    handler: H,
    semantics: Semantics,
    dedup: DedupCache,
    stats: ServerStats,
    buf: Vec<u8>,
    sink: K,
}

impl<S: ServerTransport, H: Handler> WireServer<S, H> {
    /// Creates a server with the default dedup capacity (64k entries).
    pub fn new(transport: S, handler: H, semantics: Semantics) -> WireServer<S, H> {
        WireServer::with_dedup_capacity(transport, handler, semantics, 64 * 1024)
    }

    /// Creates a server with an explicit dedup cache capacity.
    pub fn with_dedup_capacity(
        transport: S,
        handler: H,
        semantics: Semantics,
        dedup_capacity: usize,
    ) -> WireServer<S, H> {
        WireServer {
            transport,
            handler,
            semantics,
            dedup: DedupCache::new(dedup_capacity),
            stats: ServerStats::default(),
            buf: vec![0u8; MAX_DATAGRAM + 4096],
            sink: NullSink,
        }
    }
}

impl<S: ServerTransport, H: Handler, K: SpanSink> WireServer<S, H, K> {
    /// Rebinds the server to a different span sink, consuming it. The
    /// dedup cache and counters carry over.
    pub fn with_span_sink<K2: SpanSink>(self, sink: K2) -> WireServer<S, H, K2> {
        WireServer {
            transport: self.transport,
            handler: self.handler,
            semantics: self.semantics,
            dedup: self.dedup,
            stats: self.stats,
            buf: self.buf,
            sink,
        }
    }

    /// The handler (e.g. for a traced handler's captured state).
    pub fn handler_mut(&mut self) -> &mut H {
        &mut self.handler
    }

    /// Counters so far.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Current dedup-cache occupancy.
    pub fn dedup_len(&self) -> usize {
        self.dedup.len()
    }

    /// The underlying transport (e.g. to read a bound address).
    pub fn transport_mut(&mut self) -> &mut S {
        &mut self.transport
    }

    /// Processes one already-received datagram.
    fn process(&mut self, len: usize, peer: S::Peer) -> io::Result<()> {
        self.stats.received += 1;
        let decode_started = Instant::now();
        let request = match message::decode(&self.buf[..len]) {
            Ok(Message::Request(request)) => request,
            // Responses addressed to a server, or undecodable bytes
            // (corruption caught by the CRC): drop and let the client's
            // retransmission timer recover.
            Ok(Message::Response(_)) | Err(_) => {
                self.stats.decode_errors += 1;
                self.sink
                    .record(&SpanEvent::new(SpanEventKind::ServerDecodeError, 0, 0, 0));
                return Ok(());
            }
        };
        let decode_ns = saturating_elapsed_ns(decode_started);
        let mut event = SpanEvent::new(
            SpanEventKind::ServerRecv,
            request.method,
            request.client_id,
            request.request_id,
        );
        event.context = request.trace;
        event.wire_bytes = len;
        event.raw_bytes = request.body.len();
        self.sink.record(&event);
        let key = (request.client_id, request.request_id);
        if self.semantics == Semantics::AtMostOnce {
            if let Some(reply) = self.dedup.get(key) {
                let reply = reply.clone();
                self.stats.dedup_hits += 1;
                self.stats.responses_sent += 1;
                let mut event = event;
                event.kind = SpanEventKind::ServerDedupHit;
                event.wire_bytes = reply.len();
                event.raw_bytes = 0;
                self.sink.record(&event);
                return self.transport.send_to(&reply, peer);
            }
        }
        let exec_started = Instant::now();
        let (status, body) = self.handler.handle(&request);
        let exec_ns = saturating_elapsed_ns(exec_started);
        let mut exec_event = event;
        exec_event.kind = SpanEventKind::ServerExec;
        exec_event.raw_bytes = body.len();
        exec_event.status = Some(status);
        exec_event.server_decode_ns = decode_ns;
        exec_event.server_exec_ns = exec_ns;
        self.sink.record(&exec_event);
        let reply = message::encode_response(
            request.method,
            request.client_id,
            request.request_id,
            status,
            decode_ns,
            exec_ns,
            &body,
            self.handler.compress_response(request.method),
        );
        self.stats.executed += 1;
        if self.semantics == Semantics::AtMostOnce {
            self.stats.evictions += self.dedup.insert(key, reply.clone());
        }
        self.stats.responses_sent += 1;
        let mut send_event = exec_event;
        send_event.kind = SpanEventKind::ServerSend;
        send_event.wire_bytes = reply.len();
        self.sink.record(&send_event);
        self.transport.send_to(&reply, peer)
    }

    /// Drains every pending datagram without blocking; returns how many
    /// were processed. This is the deterministic entry point: tests call
    /// it at chosen points in the schedule.
    pub fn poll(&mut self) -> io::Result<usize> {
        let mut processed = 0;
        loop {
            let mut buf = std::mem::take(&mut self.buf);
            let received = self.transport.recv_from(&mut buf, Duration::ZERO);
            self.buf = buf;
            match received? {
                Some((len, peer)) => {
                    self.process(len, peer)?;
                    processed += 1;
                }
                None => return Ok(processed),
            }
        }
    }

    /// Blocking serve loop: waits up to `idle_timeout` per receive and
    /// returns once `stop` says so (checked between datagrams).
    pub fn serve(
        &mut self,
        idle_timeout: Duration,
        mut stop: impl FnMut(&ServerStats) -> bool,
    ) -> io::Result<()> {
        loop {
            if stop(&self.stats) {
                return Ok(());
            }
            let mut buf = std::mem::take(&mut self.buf);
            let received = self.transport.recv_from(&mut buf, idle_timeout);
            self.buf = buf;
            if let Some((len, peer)) = received? {
                self.process(len, peer)?;
            }
        }
    }
}

fn saturating_elapsed_ns(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::encode_request;
    use crate::transport::{MemLink, Transport};

    fn echo_handler() -> impl Handler {
        |request: &message::Request| (Status::Ok, request.body.to_vec())
    }

    fn recv_response(link: &mut MemLink) -> Option<message::Response> {
        let mut buf = [0u8; 65536];
        let n = link.recv(&mut buf, Duration::ZERO).unwrap()?;
        match message::decode(&buf[..n]).unwrap() {
            Message::Response(resp) => Some(resp),
            other => panic!("expected response, got {other:?}"),
        }
    }

    #[test]
    fn serves_an_echo_request() {
        let (mut client, server_end) = MemLink::pair();
        let mut server = WireServer::new(server_end, echo_handler(), Semantics::AtMostOnce);
        client
            .send(&encode_request(3, 10, 1, b"echo me", true))
            .unwrap();
        assert_eq!(server.poll().unwrap(), 1);
        let resp = recv_response(&mut client).unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(&resp.body[..], b"echo me");
        assert_eq!(resp.request_id, 1);
        assert_eq!(server.stats().executed, 1);
    }

    #[test]
    fn at_most_once_answers_duplicates_from_cache() {
        let (mut client, server_end) = MemLink::pair();
        let mut executions = 0u32;
        let handler = |request: &message::Request| {
            let _ = request;
            (Status::Ok, b"result".to_vec())
        };
        let mut server = WireServer::new(server_end, handler, Semantics::AtMostOnce);
        let datagram = encode_request(3, 10, 7, b"do the thing", true);
        for _ in 0..5 {
            client.send(&datagram).unwrap();
        }
        server.poll().unwrap();
        executions += server.stats().executed as u32;
        assert_eq!(executions, 1, "duplicates must not re-execute");
        assert_eq!(server.stats().dedup_hits, 4);
        // All five deliveries still get answered.
        let mut replies = 0;
        while recv_response(&mut client).is_some() {
            replies += 1;
        }
        assert_eq!(replies, 5);
    }

    #[test]
    fn at_least_once_re_executes_every_delivery() {
        let (mut client, server_end) = MemLink::pair();
        let mut server = WireServer::new(server_end, echo_handler(), Semantics::AtLeastOnce);
        let datagram = encode_request(3, 10, 7, b"idempotent", true);
        for _ in 0..3 {
            client.send(&datagram).unwrap();
        }
        server.poll().unwrap();
        assert_eq!(server.stats().executed, 3);
        assert_eq!(server.stats().dedup_hits, 0);
    }

    #[test]
    fn corrupt_datagrams_are_dropped_not_fatal() {
        let (mut client, server_end) = MemLink::pair();
        let mut server = WireServer::new(server_end, echo_handler(), Semantics::AtMostOnce);
        let mut datagram = encode_request(3, 10, 7, b"payload", true).to_vec();
        datagram[5] ^= 0xFF;
        client.send(&datagram).unwrap();
        assert_eq!(server.poll().unwrap(), 1);
        assert_eq!(server.stats().decode_errors, 1);
        assert_eq!(server.stats().responses_sent, 0);
        assert!(recv_response(&mut client).is_none());
    }

    #[test]
    fn unknown_status_requests_get_error_replies() {
        let (mut client, server_end) = MemLink::pair();
        let handler = |request: &message::Request| {
            if request.method == 999 {
                (Status::NoSuchMethod, Vec::new())
            } else {
                (Status::Ok, request.body.to_vec())
            }
        };
        let mut server = WireServer::new(server_end, handler, Semantics::AtMostOnce);
        client
            .send(&encode_request(999, 10, 1, b"", false))
            .unwrap();
        server.poll().unwrap();
        let resp = recv_response(&mut client).unwrap();
        assert_eq!(resp.status, Status::NoSuchMethod);
    }

    #[test]
    fn span_sink_sees_recv_exec_send_and_dedup() {
        use crate::message::{encode_request_traced, TraceContext};
        use crate::sink::{SpanEventKind, VecSink};
        let (mut client, server_end) = MemLink::pair();
        let mut server = WireServer::new(server_end, echo_handler(), Semantics::AtMostOnce)
            .with_span_sink(VecSink::default());
        let ctx = TraceContext {
            trace_id: 0xABCD,
            span_id: 2,
            parent_span_id: 1,
            sampled: true,
            depth: 1,
        };
        let datagram = encode_request_traced(3, 10, 1, b"echo", false, Some(&ctx));
        client.send(&datagram).unwrap();
        client.send(&datagram).unwrap();
        server.poll().unwrap();
        let kinds: Vec<SpanEventKind> = server.sink.events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                SpanEventKind::ServerRecv,
                SpanEventKind::ServerExec,
                SpanEventKind::ServerSend,
                SpanEventKind::ServerRecv,
                SpanEventKind::ServerDedupHit,
            ]
        );
        for event in &server.sink.events {
            assert_eq!(
                event.context,
                Some(ctx),
                "context propagates to {:?}",
                event.kind
            );
            assert_eq!(event.method, 3);
        }
        assert_eq!(server.sink.events[1].status, Some(Status::Ok));
        // Corrupt datagrams surface as anonymous decode-error events.
        let mut corrupt = datagram.to_vec();
        corrupt[5] ^= 0xFF;
        client.send(&corrupt).unwrap();
        server.poll().unwrap();
        assert_eq!(
            server.sink.events.last().unwrap().kind,
            SpanEventKind::ServerDecodeError
        );
    }

    #[test]
    fn dedup_cache_is_bounded_and_evicts_fifo() {
        let (mut client, server_end) = MemLink::pair();
        let mut server =
            WireServer::with_dedup_capacity(server_end, echo_handler(), Semantics::AtMostOnce, 4);
        for request_id in 0..10u64 {
            client
                .send(&encode_request(1, 10, request_id, b"x", false))
                .unwrap();
        }
        server.poll().unwrap();
        assert_eq!(server.dedup_len(), 4);
        assert_eq!(server.stats().evictions, 6);
        // An evicted request re-executes (the cost of a bounded cache)...
        client.send(&encode_request(1, 10, 0, b"x", false)).unwrap();
        server.poll().unwrap();
        assert_eq!(server.stats().executed, 11);
        // ...but a cached one does not.
        client.send(&encode_request(1, 10, 9, b"x", false)).unwrap();
        server.poll().unwrap();
        assert_eq!(server.stats().executed, 11);
        assert_eq!(server.stats().dedup_hits, 1);
    }
}
