//! Trace sampling and storage.
//!
//! Dapper samples head-based: the decision to trace is made at the root
//! and inherited by the whole tree. [`TraceCollector`] makes that decision
//! deterministically from the trace id, so a re-run with the same seed
//! samples exactly the same traces. [`TraceStore`] owns the sampled
//! traces and maintains a per-method index for the query layer.

use crate::span::{MethodId, TraceData};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Head-based sampling decision maker.
#[derive(Debug, Clone)]
pub struct TraceCollector {
    /// Sample 1 in `rate` root RPCs (1 = everything).
    rate: u64,
}

impl TraceCollector {
    /// Creates a collector sampling 1 in `rate` traces.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is zero.
    pub fn new(rate: u64) -> Self {
        assert!(rate > 0, "sampling rate must be at least 1");
        TraceCollector { rate }
    }

    /// Whether the trace with this id should be sampled.
    ///
    /// Uses a multiplicative hash of the id so that sequential ids do not
    /// alias against the modulus.
    pub fn should_sample(&self, trace_id: u64) -> bool {
        if self.rate == 1 {
            return true;
        }
        trace_id
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .is_multiple_of(self.rate)
    }

    /// The configured sampling rate.
    pub fn rate(&self) -> u64 {
        self.rate
    }
}

/// Owned storage of sampled traces with a per-method span index.
#[derive(Debug, Default)]
pub struct TraceStore {
    traces: Vec<TraceData>,
    /// Method -> list of (trace index, span index).
    by_method: HashMap<MethodId, Vec<(u32, u32)>>,
    total_spans: usize,
}

impl TraceStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sampled trace, indexing its spans.
    pub fn add(&mut self, trace: TraceData) {
        let t_idx = self.traces.len() as u32;
        for (s_idx, span) in trace.spans.iter().enumerate() {
            self.by_method
                .entry(span.method)
                .or_default()
                .push((t_idx, s_idx as u32));
        }
        self.total_spans += trace.len();
        self.traces.push(trace);
    }

    /// All traces.
    pub fn traces(&self) -> &[TraceData] {
        &self.traces
    }

    /// Number of traces stored.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Total spans across all traces.
    pub fn total_spans(&self) -> usize {
        self.total_spans
    }

    /// The methods that appear in at least one span.
    pub fn methods(&self) -> impl Iterator<Item = MethodId> + '_ {
        self.by_method.keys().copied()
    }

    /// The `(trace, span)` locations of every span of `method`.
    pub fn spans_of(&self, method: MethodId) -> &[(u32, u32)] {
        self.by_method
            .get(&method)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Appends every trace of `other`, preserving `other`'s order.
    ///
    /// Folding per-shard stores in shard order over contiguous trace
    /// partitions reproduces exactly the store a single-threaded run
    /// would have built — trace order, span indexes, and the per-method
    /// index included. The parallel fleet driver relies on this.
    pub fn merge(&mut self, other: TraceStore) {
        for trace in other.traces {
            self.add(trace);
        }
    }

    /// Visits every span of `method` with its containing trace.
    pub fn for_each_span<F>(&self, method: MethodId, mut f: F)
    where
        F: FnMut(&TraceData, &crate::span::SpanRecord),
    {
        for &(t, s) in self.spans_of(method) {
            let trace = &self.traces[t as usize];
            f(trace, &trace.spans[s as usize]);
        }
    }
}

/// A thread-safe collector handle for concurrent simulation shards.
///
/// Worker threads collect into their own [`TraceStore`]s and merge here,
/// or append traces directly; either way contention stays off the hot
/// path.
#[derive(Debug, Clone, Default)]
pub struct SharedTraceStore {
    inner: Arc<Mutex<TraceStore>>,
}

impl SharedTraceStore {
    /// Creates an empty shared store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one trace.
    pub fn add(&self, trace: TraceData) {
        self.inner.lock().add(trace);
    }

    /// Merges an entire local store.
    pub fn merge(&self, local: TraceStore) {
        self.inner.lock().merge(local);
    }

    /// Extracts the inner store, leaving an empty one.
    pub fn take(&self) -> TraceStore {
        std::mem::take(&mut *self.inner.lock())
    }

    /// Total spans currently stored.
    pub fn total_spans(&self) -> usize {
        self.inner.lock().total_spans()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{ServiceId, SpanBuilder};
    use rpclens_netsim::topology::ClusterId;
    use rpclens_simcore::time::SimTime;

    fn trace_with_methods(methods: &[u32]) -> TraceData {
        let spans: Vec<_> = methods
            .iter()
            .enumerate()
            .map(|(i, &m)| {
                let b = SpanBuilder::new(MethodId(m), ServiceId(0), ClusterId(0), ClusterId(0));
                if i == 0 { b } else { b.parent(0) }.build()
            })
            .collect();
        TraceData::new(SimTime::ZERO, spans)
    }

    #[test]
    fn sampling_rate_one_samples_everything() {
        let c = TraceCollector::new(1);
        assert!((0..1000).all(|id| c.should_sample(id)));
    }

    #[test]
    fn sampling_hits_expected_fraction() {
        let c = TraceCollector::new(64);
        let hits = (0..1_000_000u64).filter(|&id| c.should_sample(id)).count();
        let frac = hits as f64 / 1e6;
        assert!((frac - 1.0 / 64.0).abs() < 0.002, "sampled {frac}");
    }

    #[test]
    fn sampling_is_deterministic() {
        let a = TraceCollector::new(10);
        let b = TraceCollector::new(10);
        for id in 0..10_000 {
            assert_eq!(a.should_sample(id), b.should_sample(id));
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_rate_panics() {
        let _ = TraceCollector::new(0);
    }

    #[test]
    fn store_indexes_spans_by_method() {
        let mut store = TraceStore::new();
        store.add(trace_with_methods(&[1, 2, 2]));
        store.add(trace_with_methods(&[2, 3]));
        assert_eq!(store.len(), 2);
        assert_eq!(store.total_spans(), 5);
        assert_eq!(store.spans_of(MethodId(1)).len(), 1);
        assert_eq!(store.spans_of(MethodId(2)).len(), 3);
        assert_eq!(store.spans_of(MethodId(3)).len(), 1);
        assert_eq!(store.spans_of(MethodId(99)).len(), 0);
        let mut methods: Vec<_> = store.methods().map(|m| m.0).collect();
        methods.sort_unstable();
        assert_eq!(methods, vec![1, 2, 3]);
    }

    #[test]
    fn for_each_span_visits_all() {
        let mut store = TraceStore::new();
        store.add(trace_with_methods(&[7, 7, 7]));
        let mut n = 0;
        store.for_each_span(MethodId(7), |trace, span| {
            assert_eq!(trace.len(), 3);
            assert_eq!(span.method, MethodId(7));
            n += 1;
        });
        assert_eq!(n, 3);
    }

    #[test]
    fn merge_preserves_order_and_index() {
        // A store built in one pass and one built from ordered partial
        // stores must agree exactly.
        let batches = [vec![1u32, 2], vec![2, 3, 3], vec![4]];
        let mut single = TraceStore::new();
        let mut merged = TraceStore::new();
        for batch in &batches {
            let mut local = TraceStore::new();
            single.add(trace_with_methods(batch));
            local.add(trace_with_methods(batch));
            merged.merge(local);
        }
        assert_eq!(merged.len(), single.len());
        assert_eq!(merged.total_spans(), single.total_spans());
        for m in [1, 2, 3, 4, 99] {
            assert_eq!(merged.spans_of(MethodId(m)), single.spans_of(MethodId(m)));
        }
        for (a, b) in merged.traces().iter().zip(single.traces()) {
            assert_eq!(a.spans.len(), b.spans.len());
        }
    }

    #[test]
    fn shared_store_merges_from_threads() {
        let shared = SharedTraceStore::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let shared = shared.clone();
                s.spawn(move || {
                    let mut local = TraceStore::new();
                    for _ in 0..25 {
                        local.add(trace_with_methods(&[1, 2]));
                    }
                    shared.merge(local);
                });
            }
        });
        assert_eq!(shared.total_spans(), 4 * 25 * 2);
        let store = shared.take();
        assert_eq!(store.len(), 100);
        assert_eq!(shared.total_spans(), 0);
    }
}
