/root/repo/target/release/deps/shard_determinism-fbf7e7d253a4d1ce.d: crates/bench/tests/shard_determinism.rs

/root/repo/target/release/deps/shard_determinism-fbf7e7d253a4d1ce: crates/bench/tests/shard_determinism.rs

crates/bench/tests/shard_determinism.rs:
