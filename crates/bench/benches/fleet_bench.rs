//! Fleet-simulator benchmarks: catalog generation, workload generation,
//! queue-wait sampling, congestion evolution, and whole-run throughput
//! (spans per second of wall time).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rpclens_cluster::mgk::QueueModel;
use rpclens_fleet::catalog::{Catalog, CatalogConfig};
use rpclens_fleet::driver::{run_fleet, FleetConfig, SimScale};
use rpclens_fleet::workload::Workload;
use rpclens_netsim::congestion::{CongestionParams, CongestionProcess};
use rpclens_netsim::topology::Topology;
use rpclens_simcore::prelude::*;

fn bench_catalog(c: &mut Criterion) {
    let topo = Topology::default_world(1);
    let mut g = c.benchmark_group("catalog");
    g.sample_size(20);
    g.bench_function("generate_2000_methods", |b| {
        b.iter(|| {
            black_box(Catalog::generate(
                &CatalogConfig {
                    total_methods: 2_000,
                    seed: 1,
                },
                &topo,
            ))
        })
    });
    g.finish();
}

fn bench_workload(c: &mut Criterion) {
    let topo = Topology::default_world(2);
    let catalog = Catalog::generate(
        &CatalogConfig {
            total_methods: 400,
            seed: 2,
        },
        &topo,
    );
    let mut g = c.benchmark_group("workload");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("generate_10k_roots", |b| {
        let mut w = Workload::new(&catalog, &topo, SimDuration::from_hours(24), 3);
        b.iter(|| black_box(w.generate(10_000)))
    });
    g.finish();
}

fn bench_queue_and_congestion(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrates");
    g.throughput(Throughput::Elements(1));
    let q = QueueModel::new(16, SimDuration::from_micros(500), 4.0);
    let mut rng = Prng::seed_from(4);
    g.bench_function("mgk_sample_wait", |b| {
        b.iter(|| black_box(q.sample_wait(0.8, &mut rng)))
    });
    let mut proc = CongestionProcess::new(CongestionParams::wan(), Prng::seed_from(5));
    let mut jitter_rng = Prng::seed_from(6);
    let mut t = 0u64;
    g.bench_function("congestion_delay", |b| {
        b.iter(|| {
            t += 1_000_000;
            black_box(proc.queueing_delay(SimTime::from_nanos(t), &mut jitter_rng))
        })
    });
    g.finish();
}

fn bench_full_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("fleet_run");
    g.sample_size(10);
    let scale = SimScale {
        name: "bench",
        total_methods: 320,
        roots: 2_000,
        duration: SimDuration::from_hours(24),
        trace_sample_rate: 1,
        profiler_sample_cap: 10_000,
        seed: 6,
    };
    g.throughput(Throughput::Elements(scale.roots));
    g.bench_function("2k_roots_end_to_end", |b| {
        b.iter(|| black_box(run_fleet(FleetConfig::at_scale(scale.clone()))))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_catalog,
    bench_workload,
    bench_queue_and_congestion,
    bench_full_run
);
criterion_main!(benches);
