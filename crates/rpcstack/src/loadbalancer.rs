//! Pluggable RPC load-balancing policies.
//!
//! The paper's §4.3 observes that the production balancer optimizes for
//! *network latency* when choosing among clusters — CPU balance across
//! clusters is not a goal — which produces the heavy cross-cluster CPU
//! imbalance of Fig. 22. Within a cluster, replica choice is much more
//! uniform. The policies here let the benchmarks reproduce that behaviour
//! and run ablations against CPU-aware alternatives.

use rpclens_simcore::rng::Prng;
use rpclens_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};

/// What a balancer knows about one candidate target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TargetInfo {
    /// Estimated network RTT to the target.
    pub rtt: SimDuration,
    /// Current queue backlog at the target (probe or piggybacked).
    pub backlog: SimDuration,
    /// Target machine CPU utilization in `[0, 1]`.
    pub cpu_util: f64,
    /// Relative capacity weight (e.g. machine size), 1.0 = baseline.
    pub weight: f64,
}

/// The built-in balancing policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LbPolicy {
    /// Cycle through targets in order.
    RoundRobin,
    /// Uniformly random choice.
    Random,
    /// Sample two targets, pick the one with less backlog.
    PowerOfTwo,
    /// Prefer low network RTT; ignores CPU (the production default the
    /// paper describes).
    LatencyAware,
    /// Pick the target with the smallest backlog (requires fresh state).
    LeastLoaded,
    /// Score by RTT *and* CPU headroom — the cross-layer design §5.2
    /// calls for.
    CpuAndLatency,
}

impl LbPolicy {
    /// All policies (used by the ablation benchmark).
    pub const ALL: [LbPolicy; 6] = [
        LbPolicy::RoundRobin,
        LbPolicy::Random,
        LbPolicy::PowerOfTwo,
        LbPolicy::LatencyAware,
        LbPolicy::LeastLoaded,
        LbPolicy::CpuAndLatency,
    ];

    /// Display name.
    pub fn label(self) -> &'static str {
        match self {
            LbPolicy::RoundRobin => "round-robin",
            LbPolicy::Random => "random",
            LbPolicy::PowerOfTwo => "power-of-two",
            LbPolicy::LatencyAware => "latency-aware",
            LbPolicy::LeastLoaded => "least-loaded",
            LbPolicy::CpuAndLatency => "cpu+latency",
        }
    }
}

/// A stateful load balancer for one client's view of a target set.
#[derive(Debug, Clone)]
pub struct LoadBalancer {
    policy: LbPolicy,
    next: usize,
}

impl LoadBalancer {
    /// Creates a balancer with the given policy.
    pub fn new(policy: LbPolicy) -> Self {
        LoadBalancer { policy, next: 0 }
    }

    /// The active policy.
    pub fn policy(&self) -> LbPolicy {
        self.policy
    }

    /// Picks a target index from `targets`.
    ///
    /// # Panics
    ///
    /// Panics if `targets` is empty.
    pub fn pick(&mut self, targets: &[TargetInfo], rng: &mut Prng) -> usize {
        assert!(!targets.is_empty(), "balancer needs at least one target");
        if targets.len() == 1 {
            return 0;
        }
        match self.policy {
            LbPolicy::RoundRobin => {
                let i = self.next % targets.len();
                self.next = self.next.wrapping_add(1);
                i
            }
            LbPolicy::Random => rng.index(targets.len()),
            LbPolicy::PowerOfTwo => {
                let a = rng.index(targets.len());
                let mut b = rng.index(targets.len() - 1);
                if b >= a {
                    b += 1;
                }
                if targets[a].backlog <= targets[b].backlog {
                    a
                } else {
                    b
                }
            }
            LbPolicy::LatencyAware => {
                // Softmax over negative RTT: strongly prefers the nearest
                // targets but keeps some spread among near-equals, like a
                // subsetting mesh router.
                let min_rtt = targets
                    .iter()
                    .map(|t| t.rtt.as_secs_f64())
                    .fold(f64::MAX, f64::min);
                let weights: Vec<f64> = targets
                    .iter()
                    .map(|t| {
                        let excess_ms = (t.rtt.as_secs_f64() - min_rtt) * 1e3;
                        t.weight * (-excess_ms / 0.5).exp()
                    })
                    .collect();
                weighted_pick(&weights, rng)
            }
            LbPolicy::LeastLoaded => {
                let mut best = 0;
                for (i, t) in targets.iter().enumerate().skip(1) {
                    if t.backlog < targets[best].backlog {
                        best = i;
                    }
                }
                best
            }
            LbPolicy::CpuAndLatency => {
                // Score: RTT penalty plus CPU pressure penalty; pick the
                // softmax-minimal score.
                let min_rtt = targets
                    .iter()
                    .map(|t| t.rtt.as_secs_f64())
                    .fold(f64::MAX, f64::min);
                let weights: Vec<f64> = targets
                    .iter()
                    .map(|t| {
                        let excess_ms = (t.rtt.as_secs_f64() - min_rtt) * 1e3;
                        let cpu_penalty = 4.0 * t.cpu_util * t.cpu_util;
                        t.weight * (-(excess_ms / 2.0 + cpu_penalty)).exp()
                    })
                    .collect();
                weighted_pick(&weights, rng)
            }
        }
    }
}

/// Picks an index proportional to `weights` (all zero weights fall back to
/// uniform).
fn weighted_pick(weights: &[f64], rng: &mut Prng) -> usize {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 || !total.is_finite() {
        return rng.index(weights.len());
    }
    let mut u = rng.next_f64() * total;
    for (i, &w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(rtt_us: u64, backlog_us: u64, cpu: f64) -> TargetInfo {
        TargetInfo {
            rtt: SimDuration::from_micros(rtt_us),
            backlog: SimDuration::from_micros(backlog_us),
            cpu_util: cpu,
            weight: 1.0,
        }
    }

    fn pick_counts(policy: LbPolicy, targets: &[TargetInfo], n: usize, seed: u64) -> Vec<usize> {
        let mut lb = LoadBalancer::new(policy);
        let mut rng = Prng::seed_from(seed);
        let mut counts = vec![0usize; targets.len()];
        for _ in 0..n {
            counts[lb.pick(targets, &mut rng)] += 1;
        }
        counts
    }

    #[test]
    fn round_robin_is_uniform_and_cyclic() {
        let targets = vec![target(1, 0, 0.0); 4];
        let counts = pick_counts(LbPolicy::RoundRobin, &targets, 400, 1);
        assert!(counts.iter().all(|&c| c == 100), "{counts:?}");
    }

    #[test]
    fn random_is_roughly_uniform() {
        let targets = vec![target(1, 0, 0.0); 4];
        let counts = pick_counts(LbPolicy::Random, &targets, 40_000, 2);
        for &c in &counts {
            assert!((c as i64 - 10_000).abs() < 600, "{counts:?}");
        }
    }

    #[test]
    fn power_of_two_prefers_short_queues() {
        let targets = vec![
            target(1, 10_000, 0.0),
            target(1, 100, 0.0),
            target(1, 10_000, 0.0),
        ];
        let counts = pick_counts(LbPolicy::PowerOfTwo, &targets, 30_000, 3);
        assert!(
            counts[1] > counts[0] * 2 && counts[1] > counts[2] * 2,
            "{counts:?}"
        );
    }

    #[test]
    fn latency_aware_heavily_prefers_near_targets_ignoring_cpu() {
        // One nearby hot target, one distant idle target: the production
        // policy routes to the hot one — exactly the imbalance in Fig. 22.
        let targets = vec![target(100, 0, 0.95), target(50_000, 0, 0.05)];
        let counts = pick_counts(LbPolicy::LatencyAware, &targets, 10_000, 4);
        assert!(counts[0] > 9_500, "{counts:?}");
    }

    #[test]
    fn cpu_and_latency_sheds_load_from_hot_targets() {
        let targets = vec![target(100, 0, 0.95), target(500, 0, 0.05)];
        let counts = pick_counts(LbPolicy::CpuAndLatency, &targets, 10_000, 5);
        // The hot nearby target no longer takes everything.
        assert!(counts[1] > 2_000, "{counts:?}");
    }

    #[test]
    fn least_loaded_always_picks_minimum_backlog() {
        let targets = vec![
            target(1, 500, 0.0),
            target(1, 100, 0.0),
            target(1, 900, 0.0),
        ];
        let counts = pick_counts(LbPolicy::LeastLoaded, &targets, 100, 6);
        assert_eq!(counts, vec![0, 100, 0]);
    }

    #[test]
    fn single_target_short_circuits() {
        let targets = vec![target(1, 0, 0.0)];
        for policy in LbPolicy::ALL {
            let counts = pick_counts(policy, &targets, 10, 7);
            assert_eq!(counts, vec![10], "{policy:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one target")]
    fn empty_targets_panic() {
        let mut lb = LoadBalancer::new(LbPolicy::Random);
        let mut rng = Prng::seed_from(0);
        let _ = lb.pick(&[], &mut rng);
    }

    #[test]
    fn weighted_pick_respects_capacity_weights() {
        let mut targets = vec![target(100, 0, 0.5), target(100, 0, 0.5)];
        targets[1].weight = 3.0;
        let counts = pick_counts(LbPolicy::LatencyAware, &targets, 40_000, 8);
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!((2.0..4.5).contains(&ratio), "ratio {ratio}, {counts:?}");
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::BTreeSet<_> =
            LbPolicy::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), LbPolicy::ALL.len());
    }
}
