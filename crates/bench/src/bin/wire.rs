//! `rpclens-wire` — execute the modeled RPC stack on a real wire.
//!
//! ```text
//! rpclens-wire bench [--requests N] [--seed S] [--methods M]
//!                    [--semantics at-least-once|at-most-once]
//!                    [--transport udp|mem] [--out FILE]
//!                    [--trace-out FILE] [--hops N] [--fanout K]
//! rpclens-wire serve [--addr HOST:PORT] [--seed S] [--methods M]
//!                    [--semantics ...]
//! ```
//!
//! `bench` round-trips N catalog RPCs (UDP loopback by default, with the
//! server on a thread), measures per-component costs, and writes a
//! wire-validation JSON artifact comparing them against the analytical
//! Fig. 9/20 cost models. It exits non-zero if any request is lost —
//! at-least-once must never lose one. `serve` runs a standalone catalog
//! server for cross-process experiments.
//!
//! `--trace-out FILE` additionally runs a *traced* capture and writes
//! the measured causal trees as a checksummed `trace::export` artifact
//! (`rpclens-inspect trace` reads it back). Over `--transport mem` the
//! capture runs a `--hops`-deep multi-hop chain on a virtual clock and
//! is byte-identical for a given seed; over UDP it is a single-hop
//! wall-clock measurement (`--hops`/`--fanout` are ignored).

use rpclens_bench::wire::{
    self, run_over_memlink, run_over_udp, serve_udp_forever, WireBenchConfig,
};
use rpclens_bench::wiretrace::{self, TraceBenchConfig};
use rpclens_rpcwire::server::Semantics;

fn usage() -> ! {
    eprintln!(
        "usage: rpclens-wire <command> [options]\n\
         \n\
         commands:\n\
         \x20 bench  [--requests N] [--seed S] [--methods M] [--semantics SEM]\n\
         \x20        [--transport udp|mem] [--out FILE]\n\
         \x20        [--trace-out FILE] [--hops N] [--fanout K]\n\
         \x20        round-trip N catalog RPCs and emit the measured-vs-modeled artifact;\n\
         \x20        --trace-out also captures measured causal trees (trace::export)\n\
         \x20 serve  [--addr HOST:PORT] [--seed S] [--methods M] [--semantics SEM]\n\
         \x20        stand up a catalog server on UDP (default 127.0.0.1:0)\n\
         \n\
         SEM is `at-least-once` (default) or `at-most-once`."
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("rpclens-wire: {msg}");
    std::process::exit(1);
}

fn next_value<'a>(iter: &mut std::slice::Iter<'a, String>, name: &str) -> &'a str {
    match iter.next() {
        Some(v) => v.as_str(),
        None => fail(&format!("{name} needs a value")),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else { usage() };

    let mut config = WireBenchConfig::default();
    let mut transport = "udp";
    let mut out_path: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut hops = 2u32;
    let mut fanout = 2u32;
    let mut addr = "127.0.0.1:0".to_string();
    let mut iter = args[1..].iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--requests" => {
                config.requests = next_value(&mut iter, "--requests")
                    .parse()
                    .unwrap_or_else(|_| fail("--requests needs an integer"));
            }
            "--seed" => {
                config.seed = next_value(&mut iter, "--seed")
                    .parse()
                    .unwrap_or_else(|_| fail("--seed needs an integer"));
            }
            "--methods" => {
                config.total_methods = next_value(&mut iter, "--methods")
                    .parse()
                    .unwrap_or_else(|_| fail("--methods needs an integer"));
            }
            "--semantics" => {
                config.semantics = match next_value(&mut iter, "--semantics") {
                    "at-least-once" => Semantics::AtLeastOnce,
                    "at-most-once" => Semantics::AtMostOnce,
                    other => fail(&format!("unknown semantics {other}")),
                };
            }
            "--transport" => transport = next_value(&mut iter, "--transport"),
            "--out" => out_path = Some(next_value(&mut iter, "--out").to_string()),
            "--trace-out" => trace_out = Some(next_value(&mut iter, "--trace-out").to_string()),
            "--hops" => {
                hops = next_value(&mut iter, "--hops")
                    .parse()
                    .unwrap_or_else(|_| fail("--hops needs an integer >= 1"));
                if hops == 0 {
                    fail("--hops needs an integer >= 1");
                }
            }
            "--fanout" => {
                fanout = next_value(&mut iter, "--fanout")
                    .parse()
                    .unwrap_or_else(|_| fail("--fanout needs an integer"));
            }
            "--addr" => addr = next_value(&mut iter, "--addr").to_string(),
            other => fail(&format!("unknown option {other}")),
        }
    }

    match command.as_str() {
        "bench" => {
            let result = match transport {
                "udp" => run_over_udp(&config),
                "mem" => run_over_memlink(&config),
                other => fail(&format!("unknown transport {other} (udp|mem)")),
            };
            let report = result.unwrap_or_else(|e| fail(&format!("bench failed: {e}")));
            let artifact = report.to_json();
            if let Some(path) = out_path {
                std::fs::write(&path, artifact.to_pretty())
                    .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
                eprintln!("wrote {path}");
            } else {
                println!("{}", artifact.to_pretty());
            }
            eprint!(
                "{}",
                wire::wire_text(&artifact).unwrap_or_else(|e| fail(&e))
            );
            if let Some(path) = trace_out {
                let trace_config = TraceBenchConfig {
                    requests: config.requests,
                    seed: config.seed,
                    total_methods: config.total_methods,
                    hops,
                    fanout,
                };
                let traced = match transport {
                    "udp" => wiretrace::run_traced_udp(&trace_config),
                    "mem" => wiretrace::run_traced_memlink(&trace_config),
                    _ => unreachable!("transport validated above"),
                }
                .unwrap_or_else(|e| fail(&format!("traced capture failed: {e}")));
                std::fs::write(&path, &traced.export)
                    .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
                eprintln!("wrote {path}");
                eprint!("{}", wiretrace::trace_summary_text(&traced));
            }
            if report.lost > 0 {
                fail(&format!(
                    "{} of {} requests lost",
                    report.lost, report.started
                ));
            }
        }
        "serve" => {
            serve_udp_forever(&addr, &config)
                .unwrap_or_else(|e| fail(&format!("serve failed: {e}")));
        }
        _ => usage(),
    }
}
