/root/repo/target/release/deps/rpclens_simcore-08205512bbeca128.d: crates/simcore/src/lib.rs crates/simcore/src/alias.rs crates/simcore/src/dist.rs crates/simcore/src/event.rs crates/simcore/src/hist.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/streaming.rs crates/simcore/src/time.rs crates/simcore/src/zipf.rs

/root/repo/target/release/deps/rpclens_simcore-08205512bbeca128: crates/simcore/src/lib.rs crates/simcore/src/alias.rs crates/simcore/src/dist.rs crates/simcore/src/event.rs crates/simcore/src/hist.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/streaming.rs crates/simcore/src/time.rs crates/simcore/src/zipf.rs

crates/simcore/src/lib.rs:
crates/simcore/src/alias.rs:
crates/simcore/src/dist.rs:
crates/simcore/src/event.rs:
crates/simcore/src/hist.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/streaming.rs:
crates/simcore/src/time.rs:
crates/simcore/src/zipf.rs:
