/root/repo/target/release/deps/rpclens_bench-22a6a8e5ffe82d11.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs

/root/repo/target/release/deps/rpclens_bench-22a6a8e5ffe82d11: crates/bench/src/lib.rs crates/bench/src/ablation.rs

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
