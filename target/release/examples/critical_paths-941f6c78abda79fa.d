/root/repo/target/release/examples/critical_paths-941f6c78abda79fa.d: examples/critical_paths.rs

/root/repo/target/release/examples/critical_paths-941f6c78abda79fa: examples/critical_paths.rs

examples/critical_paths.rs:
