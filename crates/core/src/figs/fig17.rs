//! Fig. 17: exogenous variables vs per-component latency.
//!
//! For three services (one per category: Bigtable, KV-Store, Video
//! Metadata) and the four Table 2 variables, spans are bucketed by the
//! serving site's exogenous value at the span's timestamp; each bucket
//! reports the average latency of its near-P95 spans. Paper anchors:
//! Bigtable and Video Metadata latency rises with CPU utilization, memory
//! bandwidth, long-wakeup rate, and CPI; KV-Store (reserved cores)
//! responds mainly to CPI.

use crate::check::ExpectationSet;
use crate::render::TextTable;
use rpclens_fleet::driver::FleetRun;
use rpclens_rpcstack::component::LatencyComponent;
use rpclens_simcore::stats::{percentile, sorted_finite, spearman};
use rpclens_trace::query::MethodQuery;

/// The exogenous variables of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExoVar {
    /// CPU utilization.
    CpuUtil,
    /// Memory bandwidth (GB/s).
    MemBw,
    /// Long-wakeup rate.
    LongWakeup,
    /// Cycles per instruction.
    Cpi,
}

impl ExoVar {
    /// All variables.
    pub const ALL: [ExoVar; 4] = [
        ExoVar::CpuUtil,
        ExoVar::MemBw,
        ExoVar::LongWakeup,
        ExoVar::Cpi,
    ];

    /// Table 2 label.
    pub fn label(self) -> &'static str {
        match self {
            ExoVar::CpuUtil => "CPU Util (Percent)",
            ExoVar::MemBw => "Memory BW (GB/s)",
            ExoVar::LongWakeup => "Long Wakeup Rate",
            ExoVar::Cpi => "Cycles Per Inst.",
        }
    }
}

/// One (service, variable) relation.
#[derive(Debug)]
pub struct Relation {
    /// Service name.
    pub service: &'static str,
    /// The variable.
    pub var: ExoVar,
    /// `(variable value, mean near-tail latency seconds)` per bucket.
    pub buckets: Vec<(f64, f64)>,
    /// Spearman correlation between the variable and span latency
    /// (bucket-level).
    pub correlation: f64,
    /// Relative latency rise from the lowest to the highest bucket:
    /// `last/first - 1`. Rank correlations saturate at 1.0 once buckets
    /// are monotone; the rise measures *how much* the variable moves
    /// latency.
    pub rise: f64,
    /// The same rise computed on the *server-side* components only
    /// (receive queue, application, send queue, response processing).
    /// The paper's panels are per-component; server-side isolation
    /// removes the confound of co-located callers' client queues, which
    /// share the cluster's diurnal load.
    pub server_rise: f64,
}

/// The computed figure.
#[derive(Debug)]
pub struct Fig17 {
    /// All service x variable relations.
    pub relations: Vec<Relation>,
}

/// The three services the paper picks (one per category).
pub const SERVICES: [&str; 3] = ["Bigtable", "KV-Store", "Video Metadata"];

/// Computes the figure.
pub fn compute(run: &FleetRun) -> Fig17 {
    let query = MethodQuery {
        intra_cluster_only: true,
        min_samples: 1,
        ..MethodQuery::default()
    };
    let mut relations = Vec::new();
    for entry in run.catalog.table1() {
        if !SERVICES.contains(&entry.server) {
            continue;
        }
        // Collect (exo vars, total latency, server-side latency) samples.
        let mut samples: Vec<([f64; 4], f64, f64)> = Vec::new();
        run.store.for_each_span(entry.method, |trace, span| {
            if !query.accepts(span) {
                return;
            }
            let svc = run.catalog.method(span.method).service;
            let Some(site) = run.site(svc, span.server_cluster) else {
                return;
            };
            // The serving instant of this span.
            let at = trace.root_start + span.start_offset();
            let vars = site.load.sample(at);
            let server_side = [
                LatencyComponent::ServerRecvQueue,
                LatencyComponent::ServerApplication,
                LatencyComponent::ServerSendQueue,
                LatencyComponent::ResponseProcessing,
            ]
            .iter()
            .map(|&c| span.component(c).as_secs_f64())
            .sum::<f64>();
            samples.push((
                [
                    vars.cpu_util * 100.0,
                    vars.mem_bw_gbps,
                    vars.long_wakeup_rate,
                    vars.cpi,
                ],
                span.total_latency().as_secs_f64(),
                server_side,
            ));
        });
        if samples.len() < 200 {
            continue;
        }
        for (vi, var) in ExoVar::ALL.into_iter().enumerate() {
            let xs: Vec<f64> = samples.iter().map(|(v, _, _)| v[vi]).collect();
            // Bucket by variable octile; report near-tail mean per bucket.
            let sorted_x = sorted_finite(xs.clone());
            let mut buckets = Vec::new();
            let mut server_buckets = Vec::new();
            let near_tail_mean = |values: Vec<f64>| -> Option<f64> {
                let sb = sorted_finite(values);
                if sb.is_empty() {
                    return None;
                }
                // Mean of the samples near the tail, like the paper's
                // P95 +/- 1% selection.
                let p90 = percentile(&sb, 0.90)?;
                let p99 = percentile(&sb, 0.99)?;
                let tail: Vec<f64> = sb
                    .iter()
                    .copied()
                    .filter(|&v| v >= p90 && v <= p99)
                    .collect();
                if tail.is_empty() {
                    return None;
                }
                Some(tail.iter().sum::<f64>() / tail.len() as f64)
            };
            for d in 0..8 {
                let lo = percentile(&sorted_x, d as f64 / 8.0).expect("non-empty");
                let hi = percentile(&sorted_x, (d + 1) as f64 / 8.0).expect("non-empty");
                let in_bucket: Vec<(f64, f64)> = samples
                    .iter()
                    .filter(|(v, _, _)| v[vi] >= lo && v[vi] <= hi)
                    .map(|(_, total, server)| (*total, *server))
                    .collect();
                if in_bucket.len() < 20 {
                    continue;
                }
                let totals: Vec<f64> = in_bucket.iter().map(|p| p.0).collect();
                let servers: Vec<f64> = in_bucket.iter().map(|p| p.1).collect();
                if let (Some(t), Some(sv)) = (near_tail_mean(totals), near_tail_mean(servers)) {
                    buckets.push(((lo + hi) / 2.0, t));
                    server_buckets.push(((lo + hi) / 2.0, sv));
                }
            }
            // Correlate at bucket granularity: the paper's Fig. 17 plots
            // 30-minute-aggregated means, where per-span noise has been
            // averaged away.
            let bx: Vec<f64> = buckets.iter().map(|b| b.0).collect();
            let by: Vec<f64> = buckets.iter().map(|b| b.1).collect();
            let correlation = spearman(&bx, &by).unwrap_or(0.0);
            let rise_of = |b: &[(f64, f64)]| match (b.first(), b.last()) {
                (Some(&(_, f)), Some(&(_, l))) if f > 0.0 => l / f - 1.0,
                _ => f64::NAN,
            };
            let rise = rise_of(&buckets);
            let server_rise = rise_of(&server_buckets);
            relations.push(Relation {
                service: entry.server,
                var,
                buckets,
                correlation,
                rise,
                server_rise,
            });
        }
    }
    Fig17 { relations }
}

/// Renders the correlation matrix.
pub fn render(fig: &Fig17) -> String {
    let mut t = TextTable::new(&["service", "variable", "spearman", "buckets"]);
    for r in &fig.relations {
        t.row(vec![
            r.service.to_string(),
            r.var.label().to_string(),
            format!("{:+.3}", r.correlation),
            r.buckets.len().to_string(),
        ]);
    }
    format!(
        "Fig. 17 — Exogenous variables vs latency (near-tail means)\n{}",
        t.render()
    )
}

/// Paper-vs-measured checks.
pub fn checks(fig: &Fig17) -> ExpectationSet {
    let mut s = ExpectationSet::new();
    let corr = |svc: &str, var: ExoVar| {
        fig.relations
            .iter()
            .find(|r| r.service == svc && r.var == var)
            .map(|r| r.correlation)
            .unwrap_or(f64::NAN)
    };
    // Bigtable couples to the machine state.
    s.add(
        "fig17.bigtable_cpu",
        "Bigtable latency rises with CPU utilization",
        corr("Bigtable", ExoVar::CpuUtil),
        0.2,
        1.0,
    );
    s.add(
        "fig17.bigtable_cpi",
        "Bigtable latency rises with CPI",
        corr("Bigtable", ExoVar::Cpi),
        0.1,
        1.0,
    );
    s.add(
        "fig17.bigtable_wakeup",
        "Bigtable latency rises with the long-wakeup rate",
        corr("Bigtable", ExoVar::LongWakeup),
        0.1,
        1.0,
    );
    // KV-Store (reserved cores) is largely decoupled from utilization:
    // compare how much latency *rises* across the utilization range, not
    // rank correlations (which saturate once buckets are monotone).
    let rise = |svc: &str, var: ExoVar| {
        fig.relations
            .iter()
            .find(|r| r.service == svc && r.var == var)
            .map(|r| r.server_rise)
            .unwrap_or(f64::NAN)
    };
    let kv_rise = rise("KV-Store", ExoVar::CpuUtil).abs();
    let bt_rise = rise("Bigtable", ExoVar::CpuUtil);
    if kv_rise.is_finite() && bt_rise.is_finite() && bt_rise > 0.0 {
        s.add(
            "fig17.kv_decoupled",
            "KV-Store (reserved cores) couples to utilization far less than Bigtable",
            kv_rise / bt_rise,
            0.0,
            0.85,
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testrun::shared;

    #[test]
    fn checks_pass_on_test_run() {
        let fig = compute(shared());
        let c = checks(&fig);
        assert!(c.all_passed(), "{c}");
    }

    #[test]
    fn relations_cover_services_and_vars() {
        let fig = compute(shared());
        // At least two services (KV-Store runs on few clusters and may
        // miss the sample gate at tiny scales) x 4 vars.
        assert!(fig.relations.len() >= 8, "{}", fig.relations.len());
        for r in &fig.relations {
            assert!(
                r.correlation.is_finite() && r.correlation.abs() <= 1.0,
                "{}: {}",
                r.service,
                r.correlation
            );
        }
    }

    #[test]
    fn bigtable_buckets_trend_upward_in_cpu() {
        let fig = compute(shared());
        let r = fig
            .relations
            .iter()
            .find(|r| r.service == "Bigtable" && r.var == ExoVar::CpuUtil)
            .expect("relation exists");
        assert!(r.buckets.len() >= 4);
        let first = r.buckets.first().expect("non-empty").1;
        let last = r.buckets.last().expect("non-empty").1;
        assert!(last > first * 0.8, "no upward trend: {first} -> {last}");
    }
}
