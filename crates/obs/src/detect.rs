//! SLO and anomaly detectors over per-window metric streams.
//!
//! Two detectors, mirroring the alerting patterns the paper's fleet runs
//! on top of its Monarch-style time series:
//!
//! - [`error_budget_burn`] — multi-window burn-rate analysis of the
//!   error stream against a success-rate SLO, annotated with whether the
//!   burn coincided with network congestion episodes.
//! - [`tail_regression`] — root-latency tail comparison against a
//!   baseline run manifest.
//!
//! Detectors take plain slices, not `tsdb` handles, so this crate stays
//! at the bottom of the dependency graph; `rpclens-fleet` adapts its
//! time-series streams into [`WindowSample`] rows. Both detectors are
//! pure functions: same inputs, same findings, in a deterministic order.

use crate::manifest::LatencyQuantiles;

/// SLO parameters for the burn-rate detector.
#[derive(Debug, Clone, Copy)]
pub struct SloConfig {
    /// Success-rate objective in `(0, 1)`, e.g. `0.999`.
    pub success_target: f64,
    /// Burn-rate multiple that raises a warning; `burn >= 2 *
    /// warn_burn_rate` escalates to critical.
    pub warn_burn_rate: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        // 99.9% success objective; warn when errors burn budget at 10x
        // the sustainable rate (a standard fast-burn page threshold).
        SloConfig {
            success_target: 0.999,
            warn_burn_rate: 10.0,
        }
    }
}

/// One aggregation window of driver counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct WindowSample {
    /// Window index (aligned simulated time / window length).
    pub window: u64,
    /// RPCs completed in the window.
    pub rpcs: u64,
    /// Errors injected in the window.
    pub errors: u64,
    /// Wire traversals in the window that hit a congestion episode.
    pub congested_wire: u64,
}

/// How urgent a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational; no action implied.
    Info,
    /// Outside tolerance; worth a look.
    Warn,
    /// Far outside tolerance; the run regressed materially.
    Critical,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Critical => "critical",
        })
    }
}

/// One detector result.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which detector produced this (`error-budget-burn`, `tail-regression`).
    pub detector: &'static str,
    /// What the finding is about (a window, a quantile, ...).
    pub subject: String,
    /// Urgency.
    pub severity: Severity,
    /// Human-readable explanation with the numbers that triggered it.
    pub detail: String,
}

/// Scans per-window samples for error-budget burn above the SLO's
/// sustainable rate. Returns findings in window order; windows with no
/// traffic are skipped.
pub fn error_budget_burn(cfg: &SloConfig, windows: &[WindowSample]) -> Vec<Finding> {
    assert!(
        cfg.success_target > 0.0 && cfg.success_target < 1.0,
        "success_target must be in (0,1), got {}",
        cfg.success_target
    );
    let budget = 1.0 - cfg.success_target;
    let mut findings = Vec::new();
    for w in windows {
        if w.rpcs == 0 {
            continue;
        }
        let error_rate = w.errors as f64 / w.rpcs as f64;
        let burn = error_rate / budget;
        if burn < cfg.warn_burn_rate {
            continue;
        }
        let severity = if burn >= 2.0 * cfg.warn_burn_rate {
            Severity::Critical
        } else {
            Severity::Warn
        };
        let congestion = if w.congested_wire > 0 {
            format!(", {} congested wire traversals in window", w.congested_wire)
        } else {
            String::new()
        };
        findings.push(Finding {
            detector: "error-budget-burn",
            subject: format!("window {}", w.window),
            severity,
            detail: format!(
                "burn rate {burn:.1}x sustainable ({} errors / {} rpcs vs {:.4}% budget{congestion})",
                w.errors,
                w.rpcs,
                budget * 100.0
            ),
        });
    }
    findings
}

/// Compares current root-latency quantiles against a baseline manifest's.
/// A quantile more than `tolerance` (fractional, e.g. `0.10`) above the
/// baseline is a warning; more than `2 * tolerance` is critical. An
/// *improvement* beyond tolerance is reported as info so it is visible
/// when rebaselining.
pub fn tail_regression(
    current: &LatencyQuantiles,
    baseline: &LatencyQuantiles,
    tolerance: f64,
) -> Vec<Finding> {
    assert!(tolerance > 0.0, "tolerance must be positive");
    let mut findings = Vec::new();
    let pairs = [
        ("p50", current.p50_us, baseline.p50_us),
        ("p90", current.p90_us, baseline.p90_us),
        ("p99", current.p99_us, baseline.p99_us),
        ("p999", current.p999_us, baseline.p999_us),
    ];
    for (name, cur, base) in pairs {
        if base == 0 {
            continue;
        }
        let ratio = cur as f64 / base as f64;
        let delta = ratio - 1.0;
        let detail = format!(
            "{name} {cur}µs vs baseline {base}µs ({:+.1}%)",
            delta * 100.0
        );
        if delta > 2.0 * tolerance {
            findings.push(Finding {
                detector: "tail-regression",
                subject: name.to_string(),
                severity: Severity::Critical,
                detail,
            });
        } else if delta > tolerance {
            findings.push(Finding {
                detector: "tail-regression",
                subject: name.to_string(),
                severity: Severity::Warn,
                detail,
            });
        } else if delta < -tolerance {
            findings.push(Finding {
                detector: "tail-regression",
                subject: name.to_string(),
                severity: Severity::Info,
                detail: format!("{detail} — improvement; consider rebaselining"),
            });
        }
    }
    if current.count != baseline.count {
        findings.push(Finding {
            detector: "tail-regression",
            subject: "count".to_string(),
            severity: Severity::Warn,
            detail: format!(
                "sample count changed: {} vs baseline {} — quantiles may not be comparable",
                current.count, baseline.count
            ),
        });
    }
    findings
}

/// Renders findings as a fixed-width text table (or an all-clear line).
pub fn render_findings(findings: &[Finding]) -> String {
    if findings.is_empty() {
        return "SLO check: all clear — no findings.\n".to_string();
    }
    let mut out = String::new();
    out.push_str(&format!(
        "{:<9} {:<19} {:<10} detail\n",
        "severity", "detector", "subject"
    ));
    out.push_str(&"-".repeat(72));
    out.push('\n');
    for f in findings {
        out.push_str(&format!(
            "{:<9} {:<19} {:<10} {}\n",
            f.severity.to_string(),
            f.detector,
            f.subject,
            f.detail
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lat(p50: u64, p90: u64, p99: u64, p999: u64) -> LatencyQuantiles {
        LatencyQuantiles {
            count: 1000,
            sum_us: 0,
            min_us: 1,
            p50_us: p50,
            p90_us: p90,
            p99_us: p99,
            p999_us: p999,
            max_us: p999 * 2,
        }
    }

    #[test]
    fn quiet_windows_raise_nothing() {
        let cfg = SloConfig::default();
        let windows = [
            WindowSample {
                window: 0,
                rpcs: 10_000,
                errors: 5, // 0.05% — half the 0.1% budget, burn 0.5x
                congested_wire: 0,
            },
            WindowSample {
                window: 1,
                rpcs: 0, // empty window skipped
                errors: 0,
                congested_wire: 0,
            },
        ];
        assert!(error_budget_burn(&cfg, &windows).is_empty());
    }

    #[test]
    fn fast_burn_warns_and_escalates() {
        let cfg = SloConfig::default();
        let windows = [
            WindowSample {
                window: 3,
                rpcs: 1000,
                errors: 12, // 1.2% vs 0.1% budget → 12x
                congested_wire: 40,
            },
            WindowSample {
                window: 4,
                rpcs: 1000,
                errors: 30, // 3.0% → 30x ≥ 2*10x → critical
                congested_wire: 0,
            },
        ];
        let findings = error_budget_burn(&cfg, &windows);
        assert_eq!(findings.len(), 2);
        assert_eq!(findings[0].severity, Severity::Warn);
        assert!(findings[0].detail.contains("congested wire"));
        assert_eq!(findings[1].severity, Severity::Critical);
        assert!(!findings[1].detail.contains("congested wire"));
    }

    #[test]
    fn tail_regression_grades_by_delta() {
        let baseline = lat(100, 200, 400, 800);
        // p50 unchanged, p90 +15% (warn at 10% tol), p99 +25% (critical),
        // p999 -20% (info/improvement).
        let current = lat(100, 230, 500, 640);
        let findings = tail_regression(&current, &baseline, 0.10);
        let by_subject: Vec<(&str, Severity)> = findings
            .iter()
            .map(|f| (f.subject.as_str(), f.severity))
            .collect();
        assert_eq!(
            by_subject,
            vec![
                ("p90", Severity::Warn),
                ("p99", Severity::Critical),
                ("p999", Severity::Info),
            ]
        );
    }

    #[test]
    fn count_mismatch_is_flagged() {
        let baseline = lat(100, 200, 400, 800);
        let mut current = lat(100, 200, 400, 800);
        current.count = 999;
        let findings = tail_regression(&current, &baseline, 0.10);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].subject, "count");
    }

    #[test]
    fn zero_baseline_quantile_is_skipped() {
        let baseline = LatencyQuantiles::default();
        let current = lat(100, 200, 400, 800);
        // count 1000 vs 0 mismatch still reported, but no divide-by-zero.
        let findings = tail_regression(&current, &baseline, 0.10);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].subject, "count");
    }

    #[test]
    fn render_is_stable_and_readable() {
        assert!(render_findings(&[]).contains("all clear"));
        let f = Finding {
            detector: "tail-regression",
            subject: "p99".to_string(),
            severity: Severity::Critical,
            detail: "p99 500µs vs baseline 400µs (+25.0%)".to_string(),
        };
        let table = render_findings(&[f]);
        assert!(table.contains("critical"));
        assert!(table.contains("p99"));
    }
}
