/root/repo/target/debug/deps/rpclens-5b6ea27ae041c01c.d: src/lib.rs

/root/repo/target/debug/deps/rpclens-5b6ea27ae041c01c: src/lib.rs

src/lib.rs:
