//! Geographic datacenter network model.
//!
//! The fleet in the study spans hundreds of clusters in datacenters on
//! several continents; RPC network latency is dominated by wire
//! (speed-of-light) propagation on cross-cluster paths and by congestion
//! episodes in the tail (paper §3.2, §3.3.5, Fig. 19). This crate models:
//!
//! - [`geo`]: coordinates and great-circle propagation delay.
//! - [`topology`]: regions → datacenters → clusters, with a deterministic
//!   world builder.
//! - [`congestion`]: a Markov-modulated congestion process per path that
//!   produces bursty, heavy-tailed excess queueing delay.
//! - [`latency`]: the [`latency::Network`] facade that turns
//!   `(src, dst, bytes, time)` into a one-way message latency.
//!
//! # Examples
//!
//! ```
//! use rpclens_netsim::prelude::*;
//! use rpclens_simcore::prelude::*;
//!
//! let topo = Topology::default_world(7);
//! let mut net = Network::new(topo, NetworkConfig::default(), 7);
//! let mut rng = Prng::seed_from(1);
//! let clusters = net.topology().cluster_ids();
//! let lat = net.one_way_latency(clusters[0], clusters[0], 1024, SimTime::ZERO, &mut rng);
//! // Same-cluster messages stay in the tens of microseconds normally.
//! assert!(lat.as_micros_f64() < 5_000.0);
//! ```

pub mod congestion;
pub mod geo;
pub mod latency;
pub mod topology;

/// Convenience re-exports of the most commonly used netsim types.
pub mod prelude {
    pub use crate::{
        geo::GeoPoint,
        latency::{Network, NetworkConfig},
        topology::{ClusterId, Continent, DatacenterId, PathClass, RegionId, Topology},
    };
}
