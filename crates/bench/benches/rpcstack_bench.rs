//! Microbenchmarks for the RPC stack: the wire codec (the code whose
//! cycles Fig. 20's serialization tax measures), the cost model, and the
//! balancing policies.

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rpclens_rpcstack::codec::{crc32, decode_frame, encode_frame, Flags, RpcFrame, RpcHeader};
use rpclens_rpcstack::cost::{MessageClass, StackCostConfig, StackCostModel};
use rpclens_rpcstack::loadbalancer::{LbPolicy, LoadBalancer, TargetInfo};
use rpclens_simcore::prelude::*;

fn frame(payload_len: usize) -> RpcFrame {
    RpcFrame {
        header: RpcHeader {
            method_id: 1234,
            trace_id: 0xDEAD_BEEF,
            span_id: 7,
            parent_span_id: 3,
            deadline_ns: 5_000_000_000,
            flags: Flags::default().with(Flags::COMPRESSED),
        },
        payload: Bytes::from(vec![0xA5u8; payload_len]),
    }
}

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec");
    for size in [64usize, 1500, 32 * 1024] {
        g.throughput(Throughput::Bytes(size as u64));
        let f = frame(size);
        g.bench_with_input(BenchmarkId::new("encode", size), &f, |b, f| {
            b.iter(|| black_box(encode_frame(f)))
        });
        let encoded = encode_frame(&f);
        g.bench_with_input(BenchmarkId::new("decode", size), &encoded, |b, e| {
            b.iter(|| black_box(decode_frame(e).expect("valid frame")))
        });
    }
    g.finish();
}

fn bench_crc(c: &mut Criterion) {
    let mut g = c.benchmark_group("crc32");
    for size in [64usize, 4096, 65_536] {
        g.throughput(Throughput::Bytes(size as u64));
        let data = vec![0x5Au8; size];
        g.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| black_box(crc32(d)))
        });
    }
    g.finish();
}

fn bench_cost_model(c: &mut Criterion) {
    let model = StackCostModel::new(StackCostConfig::default());
    let mut g = c.benchmark_group("cost_model");
    g.throughput(Throughput::Elements(1));
    g.bench_function("message_cost_32k", |b| {
        b.iter(|| black_box(model.message_cost(32 * 1024, true, true)))
    });
    g.bench_function("stack_latency_1k", |b| {
        b.iter(|| black_box(model.stack_latency(1024, MessageClass::structured(), 1.0)))
    });
    g.finish();
}

fn bench_load_balancers(c: &mut Criterion) {
    let mut g = c.benchmark_group("load_balancer");
    g.throughput(Throughput::Elements(1));
    let targets: Vec<TargetInfo> = (0..32)
        .map(|i| TargetInfo {
            rtt: SimDuration::from_micros(50 + i * 37),
            backlog: SimDuration::from_micros(i * 11),
            cpu_util: (i as f64 * 0.029) % 1.0,
            weight: 1.0,
        })
        .collect();
    let mut rng = Prng::seed_from(1);
    for policy in LbPolicy::ALL {
        let mut lb = LoadBalancer::new(policy);
        g.bench_function(policy.label(), |b| {
            b.iter(|| black_box(lb.pick(&targets, &mut rng)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_codec,
    bench_crc,
    bench_cost_model,
    bench_load_balancers
);
criterion_main!(benches);
