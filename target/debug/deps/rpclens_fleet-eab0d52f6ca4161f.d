/root/repo/target/debug/deps/rpclens_fleet-eab0d52f6ca4161f.d: crates/fleet/src/lib.rs crates/fleet/src/baselines.rs crates/fleet/src/catalog.rs crates/fleet/src/driver.rs crates/fleet/src/growth.rs crates/fleet/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/librpclens_fleet-eab0d52f6ca4161f.rmeta: crates/fleet/src/lib.rs crates/fleet/src/baselines.rs crates/fleet/src/catalog.rs crates/fleet/src/driver.rs crates/fleet/src/growth.rs crates/fleet/src/workload.rs Cargo.toml

crates/fleet/src/lib.rs:
crates/fleet/src/baselines.rs:
crates/fleet/src/catalog.rs:
crates/fleet/src/driver.rs:
crates/fleet/src/growth.rs:
crates/fleet/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
