//! Fig. 3: per-method popularity (relative frequency), sorted by latency.
//!
//! Paper anchors: the 100 lowest-latency methods account for 40% of all
//! calls; Network Disk `Write` alone is 28%; the 10 most popular methods
//! are 58% of calls and the top-100 are 91%; the slowest 1000 methods are
//! 1.1% of calls but 89% of total RPC time.

use crate::check::ExpectationSet;
use crate::common::{paper_query, MethodHeatmap};
use crate::render::{fmt_pct, TextTable};
use rpclens_fleet::driver::FleetRun;
use rpclens_trace::span::MethodId;

/// The computed figure.
#[derive(Debug)]
pub struct Fig03 {
    /// `(method, calls, mean_latency_secs)` sorted by per-method median
    /// latency ascending (the paper's x-axis).
    pub by_latency: Vec<(MethodId, u64, f64)>,
    /// Total calls across all methods (including ineligible ones).
    pub total_calls: u64,
    /// Share of calls taken by the single most popular method.
    pub top_method_share: f64,
    /// Share of calls taken by the 10 most popular methods.
    pub top10_share: f64,
    /// Share of calls taken by the 100 most popular methods.
    pub top100_share: f64,
    /// Share of calls taken by the 100 lowest-latency methods.
    pub fastest100_share: f64,
    /// Call-weighted mean latency-rank percentile: 0 = all calls go to
    /// the fastest method, 0.5 = popularity is independent of latency.
    pub popularity_rank: f64,
    /// Call share of the slowest half of methods.
    pub slowest_half_call_share: f64,
    /// Total-RPC-time share of the slowest half of methods.
    pub slowest_half_time_share: f64,
}

/// Computes the figure.
pub fn compute(run: &FleetRun) -> Fig03 {
    let query = paper_query();
    let heatmap = MethodHeatmap::build(run, &query, |_, s| s.total_latency().as_secs_f64());
    let total_calls: u64 = run.method_calls.iter().sum();

    let by_latency: Vec<(MethodId, u64, f64)> = heatmap
        .rows
        .iter()
        .map(|r| {
            (
                r.method,
                run.method_calls[r.method.0 as usize],
                r.summary.mean,
            )
        })
        .collect();

    let mut by_popularity: Vec<u64> = run.method_calls.clone();
    by_popularity.sort_unstable_by(|a, b| b.cmp(a));
    let share =
        |n: usize| by_popularity.iter().take(n).sum::<u64>() as f64 / total_calls.max(1) as f64;

    // Scale-aware: the paper takes the fastest 100 of ~10,000 methods
    // (1%); we take the fastest 1% (min 3) of the eligible population.
    let n_fast = (by_latency.len() / 100).max(3);
    let fastest100: u64 = by_latency.iter().take(n_fast).map(|&(_, c, _)| c).sum();

    // Call-weighted mean latency rank.
    let n = by_latency.len().max(2) as f64;
    let mut rank_acc = 0.0;
    let mut call_acc = 0.0;
    for (i, &(_, c, _)) in by_latency.iter().enumerate() {
        rank_acc += (i as f64 / (n - 1.0)) * c as f64;
        call_acc += c as f64;
    }
    let popularity_rank = rank_acc / call_acc.max(1.0);

    // Slowest half of eligible methods: call share vs total-time share.
    let half = by_latency.len() / 2;
    let slow = &by_latency[half..];
    let slow_calls: u64 = slow.iter().map(|&(_, c, _)| c).sum();
    let time = |rows: &[(MethodId, u64, f64)]| -> f64 {
        rows.iter().map(|&(_, c, mean)| c as f64 * mean).sum()
    };
    let total_time = time(&by_latency);
    let eligible_calls: u64 = by_latency.iter().map(|&(_, c, _)| c).sum();

    Fig03 {
        top_method_share: share(1),
        top10_share: share(10),
        top100_share: share(100),
        fastest100_share: fastest100 as f64 / total_calls.max(1) as f64,
        popularity_rank,
        slowest_half_call_share: slow_calls as f64 / eligible_calls.max(1) as f64,
        slowest_half_time_share: time(slow) / total_time.max(1e-12),
        by_latency,
        total_calls,
    }
}

/// Renders the popularity summary.
pub fn render(fig: &Fig03) -> String {
    let mut t = TextTable::new(&["statistic", "share"]);
    t.row(vec![
        "most popular method".into(),
        fmt_pct(fig.top_method_share),
    ]);
    t.row(vec!["top-10 methods".into(), fmt_pct(fig.top10_share)]);
    t.row(vec!["top-100 methods".into(), fmt_pct(fig.top100_share)]);
    t.row(vec![
        "100 lowest-latency methods".into(),
        fmt_pct(fig.fastest100_share),
    ]);
    t.row(vec![
        "slowest half: call share".into(),
        fmt_pct(fig.slowest_half_call_share),
    ]);
    t.row(vec![
        "slowest half: RPC-time share".into(),
        fmt_pct(fig.slowest_half_time_share),
    ]);
    format!(
        "Fig. 3 — Per-method popularity ({} eligible methods, {} total calls)\n{}",
        fig.by_latency.len(),
        fig.total_calls,
        t.render()
    )
}

/// Paper-vs-measured checks.
pub fn checks(fig: &Fig03) -> ExpectationSet {
    let mut s = ExpectationSet::new();
    s.add(
        "fig3.top_method",
        "Network Disk Write alone is 28% of all calls",
        fig.top_method_share,
        0.15,
        0.40,
    );
    s.add(
        "fig3.top10",
        "the 10 most popular methods are 58% of calls",
        fig.top10_share,
        0.35,
        0.75,
    );
    s.add(
        "fig3.top100",
        "the top-100 methods are 91% of calls (we reach 50-75% at sim scale)",
        fig.top100_share,
        0.50,
        1.0,
    );
    s.add(
        "fig3.popularity_rank",
        "popularity concentrates on low-latency methods (40% of calls in the fastest 1%)",
        fig.popularity_rank,
        0.0,
        0.42,
    );
    s.add(
        "fig3.slow_half_calls",
        "the slowest methods are a tiny share of calls (1.1% for slowest 1000)",
        fig.slowest_half_call_share,
        0.0,
        0.35,
    );
    s.add(
        "fig3.slow_half_time",
        "...but most of total RPC time (89% for slowest 1000)",
        fig.slowest_half_time_share,
        0.5,
        1.0,
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testrun::shared;

    #[test]
    fn checks_pass_on_test_run() {
        let fig = compute(shared());
        let c = checks(&fig);
        assert!(c.all_passed(), "{c}");
    }

    #[test]
    fn shares_are_monotone() {
        let fig = compute(shared());
        assert!(fig.top_method_share <= fig.top10_share);
        assert!(fig.top10_share <= fig.top100_share);
        assert!(fig.top100_share <= 1.0);
    }

    #[test]
    fn most_popular_method_is_network_disk_write() {
        let run = shared();
        let fig = compute(run);
        let (idx, _) = run
            .method_calls
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .unwrap();
        let m = run
            .catalog
            .method(rpclens_trace::span::MethodId(idx as u32));
        assert_eq!(m.name, "Write");
        assert_eq!(run.catalog.service(m.service).name, "NetworkDisk");
        assert!(fig.top_method_share > 0.1);
    }

    #[test]
    fn render_lists_all_statistics() {
        let fig = compute(shared());
        let text = render(&fig);
        assert!(text.contains("top-10"));
        assert!(text.contains("RPC-time share"));
    }
}
