//! Driver root-throughput benchmark: the tracked perf baseline.
//!
//! Measures end-to-end roots/sec of `run_fleet` (catalog + workload
//! generation + tree expansion + merge + TSDB flush) for the `smoke` and
//! `default` presets at 1 shard and at one-shard-per-core. The numbers
//! feed the committed `BENCH_driver.json` trajectory that perf PRs are
//! judged against; every configuration is bit-identical in output at any
//! shard count, so this bench measures pure wall-clock cost.
//!
//! Refreshing the committed baseline (see README "Benchmarks"):
//!
//! ```text
//! cargo bench -p rpclens-bench --bench driver_throughput -- \
//!     --bench-json /tmp/driver_bench.json
//! ```
//!
//! then fold the emitted array into the `current` section of
//! `BENCH_driver.json`. The `baseline` section is the pre-optimization
//! reference and is only rewritten when a PR intentionally re-baselines.
//!
//! CI runs the cheap subset via `DRIVER_BENCH_PRESET=smoke`.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rpclens_fleet::driver::{run_fleet, FleetConfig, SimScale};

/// Presets to measure; `DRIVER_BENCH_PRESET=smoke|default` restricts the
/// run (CI uses `smoke` to keep the non-gating job fast).
fn presets() -> Vec<SimScale> {
    match std::env::var("DRIVER_BENCH_PRESET").as_deref() {
        Ok("smoke") => vec![SimScale::smoke()],
        Ok("default") => vec![SimScale::default_scale()],
        _ => vec![SimScale::smoke(), SimScale::default_scale()],
    }
}

fn bench_driver_throughput(c: &mut Criterion) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut g = c.benchmark_group("driver_throughput");
    g.sample_size(10);
    for scale in presets() {
        g.throughput(Throughput::Elements(scale.roots));
        // Always measure the canonical single-shard number (the tracked
        // baseline), plus the one-shard-per-core configuration when the
        // host actually has more than one core.
        let mut shard_counts = vec![1usize];
        if cores > 1 {
            shard_counts.push(cores);
        }
        for shards in shard_counts {
            g.bench_function(format!("{}_{}shard", scale.name, shards), |b| {
                b.iter(|| {
                    let mut config = FleetConfig::at_scale(scale.clone());
                    config.shards = shards;
                    black_box(run_fleet(config))
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_driver_throughput);
criterion_main!(benches);
