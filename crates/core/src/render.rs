//! Text rendering for figures: aligned tables, CDF sketches, CSV export.

use std::fmt::Write as _;

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:>w$}  ", cell, w = widths[i]);
            }
            out.push('\n');
        };
        line(&self.header, &mut out);
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a latency in seconds with an adaptive unit.
pub fn fmt_secs(s: f64) -> String {
    if !s.is_finite() {
        return "n/a".to_string();
    }
    if s < 1e-6 {
        format!("{:.0}ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.1}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.3}s", s)
    }
}

/// Formats a byte count with an adaptive unit.
pub fn fmt_bytes(b: f64) -> String {
    if !b.is_finite() {
        return "n/a".to_string();
    }
    if b < 1024.0 {
        format!("{b:.0}B")
    } else if b < 1024.0 * 1024.0 {
        format!("{:.1}KB", b / 1024.0)
    } else {
        format!("{:.1}MB", b / (1024.0 * 1024.0))
    }
}

/// Formats a fraction as a percentage.
pub fn fmt_pct(f: f64) -> String {
    if !f.is_finite() {
        return "n/a".to_string();
    }
    format!("{:.2}%", f * 100.0)
}

/// Sketches a CDF of sorted values as a fixed-width text chart, one line
/// per decile.
pub fn sketch_cdf(sorted: &[f64], fmt: fn(f64) -> String) -> String {
    if sorted.is_empty() {
        return "(no data)\n".to_string();
    }
    let mut out = String::new();
    for decile in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
        let idx = ((sorted.len() - 1) as f64 * decile) as usize;
        let bar = "#".repeat((decile * 40.0) as usize);
        let _ = writeln!(
            out,
            "p{:<5} {:>10} |{}",
            decile * 100.0,
            fmt(sorted[idx]),
            bar
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_and_counts() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "22".into()]);
        assert_eq!(t.len(), 2);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // All data lines share the same width.
        assert_eq!(lines[2].trim_end().len(), lines[3].trim_end().len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = TextTable::new(&["k", "v"]);
        t.row(vec!["a,b".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn formatters_pick_sane_units() {
        assert_eq!(fmt_secs(5e-7), "500ns");
        assert_eq!(fmt_secs(2.5e-4), "250.0us");
        assert_eq!(fmt_secs(0.0123), "12.30ms");
        assert_eq!(fmt_secs(2.0), "2.000s");
        assert_eq!(fmt_bytes(100.0), "100B");
        assert_eq!(fmt_bytes(2048.0), "2.0KB");
        assert_eq!(fmt_bytes(3.0 * 1024.0 * 1024.0), "3.0MB");
        assert_eq!(fmt_pct(0.071), "7.10%");
        assert_eq!(fmt_secs(f64::NAN), "n/a");
    }

    #[test]
    fn cdf_sketch_has_decile_lines() {
        let values: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let sketch = sketch_cdf(&values, |v| format!("{v:.0}"));
        assert_eq!(sketch.lines().count(), 8);
        assert!(sketch.contains("p50"));
        assert_eq!(sketch_cdf(&[], fmt_secs), "(no data)\n");
    }
}
