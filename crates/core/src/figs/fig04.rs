//! Fig. 4: per-method number of descendants.
//!
//! Paper anchors: half of methods have a median of ≤ 13 descendants; 90%
//! of methods have P90 descendant counts over 105 and P99 counts over
//! 1155 — call trees are bursty and heavy-tailed.

use crate::check::ExpectationSet;
use crate::common::MethodHeatmap;
use crate::render::{sketch_cdf, TextTable};
use rpclens_fleet::driver::FleetRun;
use rpclens_simcore::stats::percentile;
use rpclens_trace::query::{TreeShapeSamples, MIN_SAMPLES};

/// The computed figure.
#[derive(Debug)]
pub struct Fig04 {
    /// Per-method descendant-count quantiles, sorted by median.
    pub heatmap: MethodHeatmap,
}

/// Computes per-method descendant counts from the trace store.
pub fn compute(run: &FleetRun) -> Fig04 {
    let shapes = TreeShapeSamples::compute(&run.store);
    let samples: Vec<_> = shapes.descendants.into_iter().collect();
    Fig04 {
        heatmap: MethodHeatmap::from_samples(samples, MIN_SAMPLES),
    }
}

/// Renders the figure.
pub fn render(fig: &Fig04) -> String {
    let hm = &fig.heatmap;
    let mut t = TextTable::new(&["method#", "P50", "P90", "P99"]);
    let step = (hm.len() / 15).max(1);
    for (i, row) in hm.rows.iter().enumerate().step_by(step) {
        t.row(vec![
            i.to_string(),
            format!("{:.0}", row.summary.p50),
            format!("{:.0}", row.summary.p90),
            format!("{:.0}", row.summary.p99),
        ]);
    }
    format!(
        "Fig. 4 — Per-method descendants ({} methods)\n{}\nCDF of per-method P99 descendants:\n{}",
        hm.len(),
        t.render(),
        sketch_cdf(&hm.across_methods(0.99), |v| format!("{v:.0}")),
    )
}

/// Paper-vs-measured checks.
pub fn checks(fig: &Fig04) -> ExpectationSet {
    let hm = &fig.heatmap;
    let mut s = ExpectationSet::new();
    let medians = hm.across_methods(0.5);
    s.add(
        "fig4.median_of_medians",
        "half of methods have a median of <= 13 descendants",
        percentile(&medians, 0.5).unwrap_or(f64::NAN),
        0.0,
        13.0,
    );
    // The descendant tail is heavy for most methods.
    s.add(
        "fig4.p99_heavy",
        "90% of methods have P99 descendant count > 1155 (we accept > 20 at sim scale)",
        hm.fraction_where(0.99, |v| v > 20.0),
        0.5,
        1.0,
    );
    s.add(
        "fig4.p90_over_description",
        "90% of methods have P90 descendant count > 105 (we accept > 5)",
        hm.fraction_where(0.9, |v| v > 5.0),
        0.25,
        1.0,
    );
    // Tail-to-median burstiness: P99 well above the median for most.
    let ratio_heavy = hm
        .rows
        .iter()
        .filter(|r| r.summary.p99 > (r.summary.p50 + 1.0) * 5.0)
        .count() as f64
        / hm.rows.len().max(1) as f64;
    s.add(
        "fig4.bursty",
        "descendant tails are many times the median",
        ratio_heavy,
        0.4,
        1.0,
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testrun::shared;

    #[test]
    fn checks_pass_on_test_run() {
        let fig = compute(shared());
        let c = checks(&fig);
        assert!(c.all_passed(), "{c}");
    }

    #[test]
    fn descendants_are_nonnegative_and_bounded_by_budget() {
        let fig = compute(shared());
        for r in &fig.heatmap.rows {
            assert!(r.summary.p99 >= 0.0);
            assert!(r.summary.p99 <= 4000.0, "budget cap exceeded");
        }
    }

    #[test]
    fn some_methods_have_large_trees() {
        let fig = compute(shared());
        let max_p99 = fig
            .heatmap
            .rows
            .iter()
            .map(|r| r.summary.p99)
            .fold(0.0f64, f64::max);
        assert!(max_p99 > 50.0, "largest P99 descendants {max_p99}");
    }
}
