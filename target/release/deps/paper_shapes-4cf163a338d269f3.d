/root/repo/target/release/deps/paper_shapes-4cf163a338d269f3.d: tests/paper_shapes.rs

/root/repo/target/release/deps/paper_shapes-4cf163a338d269f3: tests/paper_shapes.rs

tests/paper_shapes.rs:
