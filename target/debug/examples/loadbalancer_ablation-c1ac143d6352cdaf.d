/root/repo/target/debug/examples/loadbalancer_ablation-c1ac143d6352cdaf.d: examples/loadbalancer_ablation.rs

/root/repo/target/debug/examples/loadbalancer_ablation-c1ac143d6352cdaf: examples/loadbalancer_ablation.rs

examples/loadbalancer_ablation.rs:
