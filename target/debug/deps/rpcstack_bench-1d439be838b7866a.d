/root/repo/target/debug/deps/rpcstack_bench-1d439be838b7866a.d: crates/bench/benches/rpcstack_bench.rs Cargo.toml

/root/repo/target/debug/deps/librpcstack_bench-1d439be838b7866a.rmeta: crates/bench/benches/rpcstack_bench.rs Cargo.toml

crates/bench/benches/rpcstack_bench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
