/root/repo/target/debug/deps/shard_determinism-dd7ed29546c86b8c.d: crates/bench/tests/shard_determinism.rs

/root/repo/target/debug/deps/shard_determinism-dd7ed29546c86b8c: crates/bench/tests/shard_determinism.rs

crates/bench/tests/shard_determinism.rs:
