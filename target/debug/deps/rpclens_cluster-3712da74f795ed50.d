/root/repo/target/debug/deps/rpclens_cluster-3712da74f795ed50.d: crates/cluster/src/lib.rs crates/cluster/src/accounting.rs crates/cluster/src/exogenous.rs crates/cluster/src/machine.rs crates/cluster/src/mgk.rs crates/cluster/src/pool.rs

/root/repo/target/debug/deps/rpclens_cluster-3712da74f795ed50: crates/cluster/src/lib.rs crates/cluster/src/accounting.rs crates/cluster/src/exogenous.rs crates/cluster/src/machine.rs crates/cluster/src/mgk.rs crates/cluster/src/pool.rs

crates/cluster/src/lib.rs:
crates/cluster/src/accounting.rs:
crates/cluster/src/exogenous.rs:
crates/cluster/src/machine.rs:
crates/cluster/src/mgk.rs:
crates/cluster/src/pool.rs:
