/root/repo/target/release/examples/crosscluster_spanner-68fde102df550f85.d: examples/crosscluster_spanner.rs

/root/repo/target/release/examples/crosscluster_spanner-68fde102df550f85: examples/crosscluster_spanner.rs

examples/crosscluster_spanner.rs:
